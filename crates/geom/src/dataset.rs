//! Flat-storage dataset container.
//!
//! All clustering algorithms in the workspace operate on a [`Dataset`]: a
//! dimensionality plus one contiguous `Vec<f64>` holding the coordinates of
//! all points row-major. Flat storage keeps the hot range-query loops cache
//! friendly and avoids one allocation per point.

use crate::point::Point;
use crate::rect::Rect;

/// A set of `n` points in `d` dimensions, stored row-major in one allocation.
///
/// Points are addressed by their `u32` row index; all clustering results
/// refer back to these indices. `u32` is deliberate: datasets in this
/// workspace are far below 4 billion points and the narrower index halves
/// the memory of the many index vectors the algorithms keep.
///
/// ```
/// use dbdc_geom::Dataset;
///
/// let mut d = Dataset::new(2);
/// d.push(&[0.0, 0.0]);
/// d.push(&[3.0, 4.0]);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.point(1), &[3.0, 4.0]);
/// let bbox = d.bounding_rect().unwrap();
/// assert_eq!(bbox.hi(), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from raw row-major coordinates.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `data.len()` is not a multiple of `dim`, or any
    /// coordinate is non-finite.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat data length must be a multiple of dim"
        );
        assert!(
            data.iter().all(|c| c.is_finite()),
            "coordinates must be finite"
        );
        Self { dim, data }
    }

    /// Builds a dataset from owned points.
    ///
    /// # Panics
    /// Panics if the points disagree on dimensionality or `points` is empty
    /// (use [`Dataset::new`] for an empty dataset).
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "use Dataset::new for an empty dataset");
        let dim = points[0].dim();
        let mut data = Vec::with_capacity(dim * points.len());
        for p in points {
            assert_eq!(p.dim(), dim, "all points must share dimensionality");
            data.extend_from_slice(p.coords());
        }
        Self { dim, data }
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn point(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point given as a coordinate slice and returns its index.
    ///
    /// # Panics
    /// Panics if the slice has the wrong dimensionality or non-finite
    /// coordinates, or if the dataset would exceed `u32::MAX` points.
    pub fn push(&mut self, coords: &[f64]) -> u32 {
        assert_eq!(coords.len(), self.dim, "wrong dimensionality");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "coordinates must be finite"
        );
        let idx = self.len();
        assert!(idx < u32::MAX as usize, "dataset exceeds u32 indexing");
        self.data.extend_from_slice(coords);
        idx as u32
    }

    /// Appends all points of `other` (which must share dimensionality) and
    /// returns the index offset at which they were inserted.
    pub fn extend_from(&mut self, other: &Dataset) -> u32 {
        assert_eq!(self.dim, other.dim, "dimensionality mismatch");
        let offset = self.len() as u32;
        self.data.extend_from_slice(&other.data);
        offset
    }

    /// Iterates over the points as coordinate slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The raw row-major coordinate storage.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The smallest rectangle covering all points, or `None` if empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.iter())
    }

    /// Builds a new dataset containing the points at `indices`, in order.
    pub fn subset(&self, indices: &[u32]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.point(i));
        }
        out
    }

    /// Splits the dataset into `k` datasets according to `assignment`
    /// (`assignment[i]` is the part of point `i`). Also returns, for each
    /// part, the original indices of its points, so results computed on the
    /// parts can be mapped back.
    ///
    /// # Panics
    /// Panics if `assignment.len() != self.len()` or any part id is `>= k`.
    pub fn partition(&self, k: usize, assignment: &[usize]) -> (Vec<Dataset>, Vec<Vec<u32>>) {
        assert_eq!(assignment.len(), self.len(), "assignment length mismatch");
        let mut parts = vec![Dataset::new(self.dim); k];
        let mut back = vec![Vec::new(); k];
        for (i, &part) in assignment.iter().enumerate() {
            assert!(part < k, "part id {part} out of range 0..{k}");
            parts[part].push(self.point(i as u32));
            back[part].push(i as u32);
        }
        (parts, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 4.0, -1.0, 3.0])
    }

    #[test]
    fn basic_accessors() {
        let d = sample();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.point(2), &[2.0, 4.0]);
        assert_eq!(d.iter().count(), 4);
        assert_eq!(d.iter().nth(3).unwrap(), &[-1.0, 3.0]);
    }

    #[test]
    fn push_and_extend() {
        let mut d = Dataset::new(2);
        assert!(d.is_empty());
        assert_eq!(d.push(&[1.0, 2.0]), 0);
        assert_eq!(d.push(&[3.0, 4.0]), 1);
        let offset = d.extend_from(&sample());
        assert_eq!(offset, 2);
        assert_eq!(d.len(), 6);
        assert_eq!(d.point(2), &[0.0, 0.0]);
    }

    #[test]
    fn from_points_round_trip() {
        let pts = vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)];
        let d = Dataset::from_points(&pts);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn from_points_rejects_mixed_dims() {
        let _ = Dataset::from_points(&[Point::xy(1.0, 2.0), Point::new(vec![1.0])]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_flat_rejects_nan() {
        let _ = Dataset::from_flat(1, vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn push_rejects_wrong_dim() {
        sample().push(&[1.0]);
    }

    #[test]
    fn bounding_rect() {
        let d = sample();
        let r = d.bounding_rect().unwrap();
        assert_eq!(r.lo(), &[-1.0, 0.0]);
        assert_eq!(r.hi(), &[2.0, 4.0]);
        assert!(Dataset::new(3).bounding_rect().is_none());
    }

    #[test]
    fn subset_preserves_order() {
        let d = sample();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[-1.0, 3.0]);
        assert_eq!(s.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn partition_with_back_mapping() {
        let d = sample();
        let (parts, back) = d.partition(2, &[0, 1, 0, 1]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[0].point(1), &[2.0, 4.0]);
        assert_eq!(back[0], vec![0, 2]);
        assert_eq!(back[1], vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_bad_part() {
        sample().partition(2, &[0, 1, 2, 0]);
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;

    #[test]
    fn dataset_serde_round_trip_via_debug_format() {
        // serde_json is not in the sanctioned dependency set, so exercise
        // the Serialize/Deserialize derives through a tiny hand-rolled
        // serializer-free check: the derives must at least compile and the
        // types implement the traits.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Dataset>();
        assert_serde::<crate::point::Point>();
        assert_serde::<crate::clustering::Label>();
    }
}
