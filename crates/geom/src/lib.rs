//! Geometry primitives for the DBDC reproduction.
//!
//! This crate is the bottom layer of the workspace: it defines the vector
//! [`Point`] type and its flat-storage container [`Dataset`], distance
//! [`metric`]s (both for vector data and, via [`metric::MetricSpace`], for
//! arbitrary metric objects such as strings), axis-aligned bounding
//! [`Rect`]angles used by the spatial indexes, and the [`Clustering`] label
//! vector together with tools for comparing two clusterings.
//!
//! Everything higher in the stack (spatial indexes, DBSCAN, the DBDC
//! protocol) is written against these types, so they are deliberately small,
//! allocation-conscious and heavily tested.

pub mod clustering;
pub mod dataset;
pub mod metric;
pub mod normalize;
pub mod point;
pub mod precision;
pub mod rect;
pub mod svg;

pub use clustering::{
    adjusted_rand_index, normalized_mutual_information, ClusterId, Clustering, Contingency, Label,
};
pub use dataset::Dataset;
pub use metric::{Chebyshev, Euclidean, Manhattan, Metric, Minkowski, SquaredEuclidean};
pub use normalize::Scaler;
pub use point::Point;
pub use precision::Precision;
pub use rect::Rect;
