//! Minimal SVG scatter-plot rendering for datasets and clusterings.
//!
//! The paper's Figure 6 presents its data sets as scatter plots; this
//! module lets the reproduction do the same without any plotting
//! dependency. Output is a self-contained SVG string: points colored by
//! cluster (noise in grey), with an optional overlay of representative
//! circles (a representative's specific ε-range is drawn as a ring — handy
//! for debugging local models).

use crate::clustering::{Clustering, Label};
use crate::dataset::Dataset;
use std::fmt::Write as _;

/// A circle overlay (e.g. a representative with its ε-range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ring {
    /// Center x.
    pub x: f64,
    /// Center y.
    pub y: f64,
    /// Radius in data units.
    pub r: f64,
    /// Color index (same palette as the clusters).
    pub color: u32,
}

/// Options for [`scatter_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Point radius in pixels.
    pub point_radius: f64,
    /// Plot title (empty for none).
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 640,
            height: 640,
            point_radius: 1.6,
            title: String::new(),
        }
    }
}

/// A qualitative 12-color palette (colorblind-aware Set3-ish).
const PALETTE: [&str; 12] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
];
const NOISE_COLOR: &str = "#c8c8c8";

/// Color for cluster `c`.
pub fn cluster_color(c: u32) -> &'static str {
    PALETTE[(c as usize) % PALETTE.len()]
}

/// Renders a 2-d dataset as an SVG scatter plot. Points are colored by the
/// optional clustering (grey noise); `rings` draws circle overlays in data
/// coordinates.
///
/// # Panics
/// Panics if the dataset is not 2-dimensional or the clustering length
/// mismatches.
pub fn scatter_svg(
    data: &Dataset,
    clustering: Option<&Clustering>,
    rings: &[Ring],
    opts: &SvgOptions,
) -> String {
    assert_eq!(data.dim(), 2, "scatter_svg renders 2-d data");
    if let Some(c) = clustering {
        assert_eq!(c.len(), data.len(), "clustering must cover the dataset");
    }
    let (w, h) = (opts.width as f64, opts.height as f64);
    let margin = 12.0;
    // Data bounds including ring extents.
    let mut lo = [f64::INFINITY; 2];
    let mut hi = [f64::NEG_INFINITY; 2];
    for p in data.iter() {
        for d in 0..2 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    for r in rings {
        lo[0] = lo[0].min(r.x - r.r);
        lo[1] = lo[1].min(r.y - r.r);
        hi[0] = hi[0].max(r.x + r.r);
        hi[1] = hi[1].max(r.y + r.r);
    }
    if data.is_empty() && rings.is_empty() {
        lo = [0.0, 0.0];
        hi = [1.0, 1.0];
    }
    let span = [(hi[0] - lo[0]).max(1e-12), (hi[1] - lo[1]).max(1e-12)];
    // Uniform scale preserving aspect ratio; y axis flipped (SVG grows
    // downward).
    let scale = ((w - 2.0 * margin) / span[0]).min((h - 2.0 * margin) / span[1]);
    let sx = |x: f64| margin + (x - lo[0]) * scale;
    let sy = |y: f64| h - margin - (y - lo[1]) * scale;

    let mut out = String::with_capacity(64 * data.len() + 512);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if !opts.title.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="13">{}</text>"#,
            margin,
            margin + 2.0,
            xml_escape(&opts.title)
        );
    }
    for (i, p) in data.iter().enumerate() {
        let color = match clustering.map(|c| c.label(i as u32)) {
            Some(Label::Cluster(c)) => cluster_color(c),
            Some(Label::Noise) => NOISE_COLOR,
            None => PALETTE[0],
        };
        let _ = writeln!(
            out,
            r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{color}"/>"#,
            sx(p[0]),
            sy(p[1]),
            opts.point_radius
        );
    }
    for r in rings {
        let _ = writeln!(
            out,
            r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="none" stroke="{}" stroke-width="1.2" stroke-opacity="0.8"/>"#,
            sx(r.x),
            sy(r.y),
            r.r * scale,
            cluster_color(r.color)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Dataset, Clustering) {
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 5.0, 5.0]);
        let c = Clustering::from_labels(vec![Label::Cluster(0), Label::Cluster(0), Label::Noise]);
        (d, c)
    }

    #[test]
    fn renders_points_and_noise() {
        let (d, c) = sample();
        let svg = scatter_svg(&d, Some(&c), &[], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains(NOISE_COLOR));
        assert!(svg.contains(cluster_color(0)));
    }

    #[test]
    fn renders_rings() {
        let (d, _) = sample();
        let rings = [Ring {
            x: 0.5,
            y: 0.5,
            r: 2.0,
            color: 1,
        }];
        let svg = scatter_svg(&d, None, &rings, &SvgOptions::default());
        assert!(svg.contains("stroke="));
        assert_eq!(svg.matches("<circle").count(), 4);
    }

    #[test]
    fn title_is_escaped() {
        let (d, _) = sample();
        let svg = scatter_svg(
            &d,
            None,
            &[],
            &SvgOptions {
                title: "<A & B>".to_string(),
                ..SvgOptions::default()
            },
        );
        assert!(svg.contains("&lt;A &amp; B&gt;"));
    }

    #[test]
    fn empty_dataset_renders() {
        let d = Dataset::new(2);
        let svg = scatter_svg(&d, None, &[], &SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    #[should_panic(expected = "2-d")]
    fn rejects_3d() {
        let d = Dataset::from_flat(3, vec![0.0, 0.0, 0.0]);
        let _ = scatter_svg(&d, None, &[], &SvgOptions::default());
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(cluster_color(0), cluster_color(12));
        assert_ne!(cluster_color(0), cluster_color(1));
    }

    #[test]
    fn coordinates_stay_in_canvas() {
        let (d, c) = sample();
        let svg = scatter_svg(&d, Some(&c), &[], &SvgOptions::default());
        for cap in svg.split("cx=\"").skip(1) {
            let v: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=640.0).contains(&v), "cx {v} escapes canvas");
        }
    }
}
