//! Distance metrics.
//!
//! DBSCAN — and therefore DBDC — only needs a distance function, not vector
//! coordinates (the paper lists "can be used for all kinds of metric data
//! spaces" as one of the reasons for choosing DBSCAN). Two abstractions are
//! provided:
//!
//! * [`Metric`] — a metric on coordinate slices (`&[f64]`). This is what the
//!   vector-space indexes (grid, kd-tree, R*-tree) and the standard pipeline
//!   use.
//! * [`MetricSpace`] — a metric on arbitrary objects, used by the M-tree and
//!   by the metric-space example (edit distance on strings).

/// Lane width of the batched surrogate kernels: points are processed in
/// fixed-size chunks of this many so the accumulator fits in a stack
/// array rustc can keep in vector registers.
pub const BATCH_LANES: usize = 8;

/// Dimensions up to this size use stack buffers on the allocation-free
/// paths ([`Metric::surrogate_dist_to_box`] and the generic
/// [`Metric::surrogate_batch`]); higher dimensions fall back to heap
/// scratch.
const STACK_DIM: usize = 16;

/// A metric on `d`-dimensional coordinate slices.
///
/// Implementations must satisfy the metric axioms (non-negativity, identity,
/// symmetry, triangle inequality) for the spatial indexes to return correct
/// results. All provided implementations do.
pub trait Metric: Send + Sync {
    /// The distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// A monotone surrogate of the distance that is cheaper to compute, used
    /// for comparisons only (e.g. nearest-neighbour pruning). For the
    /// Euclidean metric this is the squared distance. The default is the
    /// distance itself.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        self.dist(a, b)
    }

    /// Converts a true distance into surrogate units.
    #[inline]
    fn to_surrogate(&self, d: f64) -> f64 {
        d
    }

    /// Batched [`Metric::surrogate`] over a structure-of-arrays block:
    /// coordinate `d` of point `i` lives at `cols[d * stride + i]`, and
    /// `out[i]` receives `surrogate(q, pᵢ)` for `i < n`.
    ///
    /// Must produce **bit-identical** values to the scalar `surrogate`
    /// (the scalar path is the oracle, property-tested against this).
    /// The provided implementations keep the per-point accumulation in
    /// the same dimension order as their scalar loops and chunk points
    /// [`BATCH_LANES`] at a time so rustc auto-vectorizes across points.
    ///
    /// Callers guarantee `n <= stride`, `cols.len() >= (q.len() - 1) *
    /// stride + n`, and `out.len() >= n`.
    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        // Generic fallback: gather each point into scratch and defer to
        // the scalar surrogate, so custom metrics stay correct without
        // writing a kernel.
        let dim = q.len();
        let mut stack = [0.0f64; STACK_DIM];
        let mut heap;
        let buf: &mut [f64] = if dim <= STACK_DIM {
            &mut stack[..dim]
        } else {
            heap = vec![0.0; dim];
            &mut heap
        };
        for (i, o) in out.iter_mut().take(n).enumerate() {
            for (d, c) in buf.iter_mut().enumerate() {
                *c = cols[d * stride + i];
            }
            *o = self.surrogate(q, buf);
        }
    }

    /// Single-precision [`Metric::surrogate_batch`]: same SoA layout,
    /// `f32` columns and outputs, for the opt-in reduced-precision scan
    /// path. The contract is looser than the `f64` kernel's: results
    /// must be **bit-identical to a scalar f32 accumulation** in the
    /// same dimension order (the Lp overrides are property-tested for
    /// this), but are *not* expected to match the `f64` oracle — the
    /// precision→quality tradeoff is measured, not assumed away.
    ///
    /// The default gathers each point, widens to `f64`, applies the
    /// scalar surrogate and narrows the result, so custom metrics stay
    /// correct (if slower) without writing an `f32` kernel.
    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let dim = q.len();
        let mut qstack = [0.0f64; STACK_DIM];
        let mut qheap;
        let qbuf: &mut [f64] = if dim <= STACK_DIM {
            &mut qstack[..dim]
        } else {
            qheap = vec![0.0; dim];
            &mut qheap
        };
        for (w, &v) in qbuf.iter_mut().zip(q) {
            *w = v as f64;
        }
        let mut stack = [0.0f64; STACK_DIM];
        let mut heap;
        let buf: &mut [f64] = if dim <= STACK_DIM {
            &mut stack[..dim]
        } else {
            heap = vec![0.0; dim];
            &mut heap
        };
        for (i, o) in out.iter_mut().take(n).enumerate() {
            for (d, c) in buf.iter_mut().enumerate() {
                *c = cols[d * stride + i] as f64;
            }
            *o = self.surrogate(qbuf, buf) as f32;
        }
    }

    /// Lower bound, in surrogate units, on `surrogate(q, p)` over every
    /// point `p` of the axis-aligned box `[lo, hi]`.
    ///
    /// Equivalent to `to_surrogate(dist_to_box(q, lo, hi))` for every
    /// translation-invariant metric that is monotone in the per-
    /// coordinate absolute differences (all Lp metrics qualify): the
    /// closest point of the box is the per-coordinate clamp of `q`. The
    /// default clamps into a stack buffer and applies `surrogate`;
    /// the Lp implementations override it with direct accumulation.
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let dim = q.len();
        let mut stack = [0.0f64; 2 * STACK_DIM];
        let mut heap;
        let buf: &mut [f64] = if dim <= STACK_DIM {
            &mut stack
        } else {
            heap = vec![0.0; 2 * dim];
            &mut heap
        };
        let (gaps, zeros) = buf.split_at_mut(buf.len() / 2);
        for i in 0..dim {
            gaps[i] = box_gap(q[i], lo[i], hi[i]);
        }
        self.surrogate(&gaps[..dim], &zeros[..dim])
    }
}

/// Shared chunked loop behind the Lp `surrogate_batch` overrides:
/// points are processed [`BATCH_LANES`] at a time, folding each
/// dimension's per-lane difference `q[d] - pᵢ[d]` into a stack
/// accumulator array. Dimensions advance in ascending order with the
/// same `q - p` subtraction direction as the scalar loops, so each
/// lane performs the identical float-op sequence and the results are
/// bit-identical to the scalar surrogate.
#[inline]
fn batch_kernel(
    q: &[f64],
    cols: &[f64],
    stride: usize,
    n: usize,
    out: &mut [f64],
    fold: impl Fn(f64, f64) -> f64 + Copy,
) {
    const L: usize = BATCH_LANES;
    let mut i = 0;
    while i + L <= n {
        let mut acc = [0.0f64; L];
        for (d, &qd) in q.iter().enumerate() {
            let col = &cols[d * stride + i..d * stride + i + L];
            for (a, &c) in acc.iter_mut().zip(col) {
                *a = fold(*a, qd - c);
            }
        }
        out[i..i + L].copy_from_slice(&acc);
        i += L;
    }
    for j in i..n {
        let mut acc = 0.0;
        for (d, &qd) in q.iter().enumerate() {
            acc = fold(acc, qd - cols[d * stride + j]);
        }
        out[j] = acc;
    }
}

/// `f32` mirror of [`batch_kernel`]: identical chunking, lane order and
/// fold direction, accumulating in single precision. Bit-identical to a
/// scalar f32 loop over the same dimension order, which is all the f32
/// contract promises.
#[inline]
fn batch_kernel_f32(
    q: &[f32],
    cols: &[f32],
    stride: usize,
    n: usize,
    out: &mut [f32],
    fold: impl Fn(f32, f32) -> f32 + Copy,
) {
    const L: usize = BATCH_LANES;
    let mut i = 0;
    while i + L <= n {
        let mut acc = [0.0f32; L];
        for (d, &qd) in q.iter().enumerate() {
            let col = &cols[d * stride + i..d * stride + i + L];
            for (a, &c) in acc.iter_mut().zip(col) {
                *a = fold(*a, qd - c);
            }
        }
        out[i..i + L].copy_from_slice(&acc);
        i += L;
    }
    for j in i..n {
        let mut acc = 0.0;
        for (d, &qd) in q.iter().enumerate() {
            acc = fold(acc, qd - cols[d * stride + j]);
        }
        out[j] = acc;
    }
}

/// Per-coordinate gap between `q` and the interval `[lo, hi]` (0 inside).
#[inline]
fn box_gap(q: f64, lo: f64, hi: f64) -> f64 {
    if q < lo {
        lo - q
    } else if q > hi {
        q - hi
    } else {
        0.0
    }
}

/// The Euclidean (L2) metric — the metric used in all of the paper's
/// experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b).sqrt()
    }

    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b)
    }

    #[inline]
    fn to_surrogate(&self, d: f64) -> f64 {
        d * d
    }

    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        batch_kernel(q, cols, stride, n, out, |acc, diff| acc + diff * diff);
    }

    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        batch_kernel_f32(q, cols, stride, n, out, |acc, diff| acc + diff * diff);
    }

    #[inline]
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..q.len() {
            let g = box_gap(q[i], lo[i], hi[i]);
            acc += g * g;
        }
        acc
    }
}

/// The squared Euclidean "metric".
///
/// Not a metric (it violates the triangle inequality) — provided only as a
/// building block for algorithms that explicitly work in squared space, such
/// as k-means' assignment step. It must **not** be used with the spatial
/// indexes, which rely on the triangle inequality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Metric for SquaredEuclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b)
    }

    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        batch_kernel(q, cols, stride, n, out, |acc, diff| acc + diff * diff);
    }

    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        batch_kernel_f32(q, cols, stride, n, out, |acc, diff| acc + diff * diff);
    }

    #[inline]
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..q.len() {
            let g = box_gap(q[i], lo[i], hi[i]);
            acc += g * g;
        }
        acc
    }
}

/// The Manhattan (L1) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        batch_kernel(q, cols, stride, n, out, |acc, diff| acc + diff.abs());
    }

    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        batch_kernel_f32(q, cols, stride, n, out, |acc, diff| acc + diff.abs());
    }

    #[inline]
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..q.len() {
            acc += box_gap(q[i], lo[i], hi[i]);
        }
        acc
    }
}

/// The Chebyshev (L∞) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        batch_kernel(q, cols, stride, n, out, |acc, diff| acc.max(diff.abs()));
    }

    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        batch_kernel_f32(q, cols, stride, n, out, |acc, diff| acc.max(diff.abs()));
    }

    #[inline]
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..q.len() {
            acc = acc.max(box_gap(q[i], lo[i], hi[i]));
        }
        acc
    }
}

/// The Minkowski (Lp) metric for a caller-chosen order `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an Lp metric.
    ///
    /// # Panics
    /// Panics if `p < 1` (the Lp "distance" is not a metric for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Minkowski order must be >= 1 to form a metric");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.surrogate(a, b).powf(1.0 / self.p)
    }

    /// `Σ|xᵢ−yᵢ|^p` — the p-th power of the distance. Monotone for
    /// `p >= 1` (which the constructor enforces), and skips the
    /// per-comparison `powf(1.0/p)` root.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum()
    }

    #[inline]
    fn to_surrogate(&self, d: f64) -> f64 {
        d.powf(self.p)
    }

    fn surrogate_batch(&self, q: &[f64], cols: &[f64], stride: usize, n: usize, out: &mut [f64]) {
        let p = self.p;
        batch_kernel(q, cols, stride, n, out, |acc, diff| {
            acc + diff.abs().powf(p)
        });
    }

    fn surrogate_batch_f32(
        &self,
        q: &[f32],
        cols: &[f32],
        stride: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let p = self.p as f32;
        batch_kernel_f32(q, cols, stride, n, out, |acc, diff| {
            acc + diff.abs().powf(p)
        });
    }

    #[inline]
    fn surrogate_dist_to_box(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..q.len() {
            acc += box_gap(q[i], lo[i], hi[i]).powf(self.p);
        }
        acc
    }
}

/// A metric on arbitrary objects, for use with the M-tree and other
/// metric-space access methods.
pub trait MetricSpace<T: ?Sized>: Send + Sync {
    /// The distance between two objects.
    fn dist(&self, a: &T, b: &T) -> f64;
}

/// Adapts any [`Metric`] into a [`MetricSpace`] over coordinate vectors, so
/// vector data can be stored in metric-space indexes like the M-tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorSpace<M>(pub M);

impl<M: Metric> MetricSpace<[f64]> for VectorSpace<M> {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.0.dist(a, b)
    }
}

impl<M: Metric> MetricSpace<Vec<f64>> for VectorSpace<M> {
    #[inline]
    fn dist(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        self.0.dist(a, b)
    }
}

/// Levenshtein edit distance on strings — a genuine non-vector metric used
/// by the metric-space example and the M-tree tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

impl MetricSpace<str> for EditDistance {
    fn dist(&self, a: &str, b: &str) -> f64 {
        levenshtein(a, b) as f64
    }
}

impl MetricSpace<String> for EditDistance {
    fn dist(&self, a: &String, b: &String) -> f64 {
        levenshtein(a, b) as f64
    }
}

/// Classic two-row dynamic-programming Levenshtein distance, operating on
/// Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_basic() {
        let m = Euclidean;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn euclidean_surrogate_is_squared() {
        let m = Euclidean;
        assert_eq!(m.surrogate(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(m.to_surrogate(5.0), 25.0);
    }

    #[test]
    fn manhattan_basic() {
        assert_eq!(Manhattan.dist(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn chebyshev_basic() {
        assert_eq!(Chebyshev.dist(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
        assert_eq!(Chebyshev.dist(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn minkowski_reduces_to_l1_l2() {
        let a = [0.3, -1.2, 4.0];
        let b = [2.0, 0.5, -0.25];
        assert!((Minkowski::new(1.0).dist(&a, &b) - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).dist(&a, &b) - Euclidean.dist(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn minkowski_surrogate_is_pth_power_of_dist() {
        let a = [0.3, -1.2, 4.0];
        let b = [2.0, 0.5, -0.25];
        for p in [1.0, 1.5, 2.0, 3.0, 4.5] {
            let m = Minkowski::new(p);
            let d = m.dist(&a, &b);
            let s = m.surrogate(&a, &b);
            assert!(
                (s - d.powf(p)).abs() <= 1e-9 * s.abs().max(1.0),
                "p={p}: surrogate {s} vs dist^p {}",
                d.powf(p)
            );
            assert!((m.to_surrogate(d) - s).abs() <= 1e-9 * s.abs().max(1.0));
            // Monotone: ordering by surrogate == ordering by dist.
            let c = [0.0, 0.0, 0.0];
            assert_eq!(
                m.surrogate(&a, &b) < m.surrogate(&a, &c),
                m.dist(&a, &b) < m.dist(&a, &c),
                "p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn minkowski_rejects_sub_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn edit_distance_metric_space() {
        let m = EditDistance;
        assert_eq!(m.dist("rust", "crust"), 1.0);
        let s1 = String::from("graph");
        let s2 = String::from("giraffe");
        assert_eq!(m.dist(&s1, &s2), levenshtein("graph", "giraffe") as f64);
    }

    #[test]
    fn vector_space_adapter_matches_inner_metric() {
        let vs = VectorSpace(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(MetricSpace::<[f64]>::dist(&vs, &a, &b), 5.0);
        assert_eq!(MetricSpace::<Vec<f64>>::dist(&vs, &a, &b), 5.0);
    }

    fn coords() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1e3..1e3f64, 3)
    }

    proptest! {
        #[test]
        fn euclidean_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Euclidean, &a, &b, &c);
        }

        #[test]
        fn manhattan_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Manhattan, &a, &b, &c);
        }

        #[test]
        fn chebyshev_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Chebyshev, &a, &b, &c);
        }

        #[test]
        fn minkowski_axioms((a, b, c, p) in (coords(), coords(), coords(), 1.0..5.0f64)) {
            metric_axioms(&Minkowski::new(p), &a, &b, &c);
        }

        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }
    }

    /// A metric with no kernel overrides, so the proptests below also
    /// exercise the trait's default `surrogate_batch` /
    /// `surrogate_dist_to_box` implementations.
    struct WeightedL1;

    impl Metric for WeightedL1 {
        fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
            a.iter()
                .zip(b.iter())
                .enumerate()
                .map(|(i, (x, y))| (i as f64 + 1.0) * (x - y).abs())
                .sum()
        }
    }

    /// Every metric the kernel proptests sweep, as trait objects.
    fn kernel_metrics() -> Vec<Box<dyn Metric>> {
        vec![
            Box::new(Euclidean),
            Box::new(SquaredEuclidean),
            Box::new(Manhattan),
            Box::new(Chebyshev),
            Box::new(Minkowski::new(1.0)),
            Box::new(Minkowski::new(2.5)),
            Box::new(Minkowski::new(4.0)),
            Box::new(WeightedL1),
        ]
    }

    /// A query, an SoA block of `n` points (with `stride >= n` to
    /// exercise padded blocks), and the same points row-major.
    fn soa_block() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, usize)> {
        (1usize..=5, 0usize..=3).prop_flat_map(|(dim, pad)| {
            (
                prop::collection::vec(-1e3..1e3f64, dim),
                prop::collection::vec(prop::collection::vec(-1e3..1e3f64, dim), 0..40),
                Just(pad),
            )
        })
    }

    proptest! {
        /// The batched kernels are bit-identical to the scalar
        /// surrogate, for every metric, dimension, block length, and
        /// padded stride — including the `BATCH_LANES` remainder tail.
        #[test]
        fn surrogate_batch_matches_scalar((q, pts, pad) in soa_block()) {
            let dim = q.len();
            let n = pts.len();
            let stride = n + pad;
            // Column-major block; padding lanes poisoned so an
            // out-of-range lane read shows up as a wrong answer.
            let mut cols = vec![1e12f64; dim * stride];
            for (i, p) in pts.iter().enumerate() {
                for d in 0..dim {
                    cols[d * stride + i] = p[d];
                }
            }
            for m in kernel_metrics() {
                let mut out = vec![f64::NAN; n];
                m.surrogate_batch(&q, &cols, stride, n, &mut out);
                for (i, p) in pts.iter().enumerate() {
                    let scalar = m.surrogate(&q, p);
                    prop_assert_eq!(
                        out[i].to_bits(),
                        scalar.to_bits(),
                        "point {} of {}: batch {} vs scalar {}",
                        i, n, out[i], scalar
                    );
                }
            }
        }

        /// The f32 kernels are bit-identical to a scalar f32
        /// accumulation in ascending dimension order — the contract the
        /// reduced-precision scan path relies on — and the trait's
        /// widen-narrow default matches narrowing the f64 surrogate.
        #[test]
        fn surrogate_batch_f32_matches_scalar((q, pts, pad) in soa_block()) {
            let dim = q.len();
            let n = pts.len();
            let stride = n + pad;
            let q32: Vec<f32> = q.iter().map(|&x| x as f32).collect();
            let mut cols = vec![1e12f32; dim * stride];
            for (i, p) in pts.iter().enumerate() {
                for d in 0..dim {
                    cols[d * stride + i] = p[d] as f32;
                }
            }
            // (metric, scalar f32 fold) for every shipped kernel.
            type Fold = Box<dyn Fn(f32, f32) -> f32>;
            let kernels: Vec<(Box<dyn Metric>, Fold)> = vec![
                (Box::new(Euclidean), Box::new(|acc, d: f32| acc + d * d)),
                (Box::new(SquaredEuclidean), Box::new(|acc, d: f32| acc + d * d)),
                (Box::new(Manhattan), Box::new(|acc, d: f32| acc + d.abs())),
                (Box::new(Chebyshev), Box::new(|acc: f32, d: f32| acc.max(d.abs()))),
                (Box::new(Minkowski::new(2.5)), Box::new(|acc, d: f32| acc + d.abs().powf(2.5))),
            ];
            for (m, fold) in &kernels {
                let mut out = vec![f32::NAN; n];
                m.surrogate_batch_f32(&q32, &cols, stride, n, &mut out);
                for (i, got) in out.iter().enumerate() {
                    let mut scalar = 0.0f32;
                    for (d, &qd) in q32.iter().enumerate() {
                        scalar = fold(scalar, qd - cols[d * stride + i]);
                    }
                    prop_assert_eq!(
                        got.to_bits(),
                        scalar.to_bits(),
                        "point {} of {}: batch {} vs scalar {}",
                        i, n, got, scalar
                    );
                }
            }
            // The default implementation narrows the f64 surrogate.
            let m = WeightedL1;
            let mut out = vec![f32::NAN; n];
            m.surrogate_batch_f32(&q32, &cols, stride, n, &mut out);
            for (i, got) in out.iter().enumerate() {
                let p64: Vec<f64> = (0..dim).map(|d| cols[d * stride + i] as f64).collect();
                let q64: Vec<f64> = q32.iter().map(|&x| x as f64).collect();
                let want = m.surrogate(&q64, &p64) as f32;
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }

        /// `surrogate_dist_to_box` equals the surrogate distance to the
        /// clamped (closest) point of the box, and lower-bounds the
        /// surrogate to any point inside the box.
        #[test]
        fn surrogate_box_bound_is_clamp_distance(
            (q, corners, inside) in (1usize..=5).prop_flat_map(|dim| {
                (
                    prop::collection::vec(-1e3..1e3f64, dim),
                    prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), dim),
                    prop::collection::vec(0.0..=1.0f64, dim),
                )
            })
        ) {
            let dim = q.len();
            let lo: Vec<f64> = corners.iter().map(|&(a, b)| a.min(b)).collect();
            let hi: Vec<f64> = corners.iter().map(|&(a, b)| a.max(b)).collect();
            let clamp: Vec<f64> = (0..dim).map(|i| q[i].clamp(lo[i], hi[i])).collect();
            let interior: Vec<f64> = (0..dim)
                .map(|i| lo[i] + inside[i] * (hi[i] - lo[i]))
                .collect();
            for m in kernel_metrics() {
                let bound = m.surrogate_dist_to_box(&q, &lo, &hi);
                let at_clamp = m.surrogate(&q, &clamp);
                prop_assert!(
                    (bound - at_clamp).abs() <= 1e-9 * at_clamp.abs().max(1.0),
                    "bound {} vs clamp surrogate {}", bound, at_clamp
                );
                prop_assert!(
                    bound <= m.surrogate(&q, &interior) * (1.0 + 1e-12) + 1e-9,
                    "bound {} above interior surrogate {}",
                    bound, m.surrogate(&q, &interior)
                );
            }
        }
    }

    fn metric_axioms<M: Metric>(m: &M, a: &[f64], b: &[f64], c: &[f64]) {
        let ab = m.dist(a, b);
        let ba = m.dist(b, a);
        let aa = m.dist(a, a);
        assert!(ab >= 0.0, "non-negative");
        assert!(aa.abs() < 1e-9, "identity");
        assert!((ab - ba).abs() < 1e-9, "symmetry");
        let ac = m.dist(a, c);
        let cb = m.dist(c, b);
        assert!(ab <= ac + cb + 1e-9, "triangle: {ab} > {ac} + {cb}");
    }
}
