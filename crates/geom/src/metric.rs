//! Distance metrics.
//!
//! DBSCAN — and therefore DBDC — only needs a distance function, not vector
//! coordinates (the paper lists "can be used for all kinds of metric data
//! spaces" as one of the reasons for choosing DBSCAN). Two abstractions are
//! provided:
//!
//! * [`Metric`] — a metric on coordinate slices (`&[f64]`). This is what the
//!   vector-space indexes (grid, kd-tree, R*-tree) and the standard pipeline
//!   use.
//! * [`MetricSpace`] — a metric on arbitrary objects, used by the M-tree and
//!   by the metric-space example (edit distance on strings).

/// A metric on `d`-dimensional coordinate slices.
///
/// Implementations must satisfy the metric axioms (non-negativity, identity,
/// symmetry, triangle inequality) for the spatial indexes to return correct
/// results. All provided implementations do.
pub trait Metric: Send + Sync {
    /// The distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// A monotone surrogate of the distance that is cheaper to compute, used
    /// for comparisons only (e.g. nearest-neighbour pruning). For the
    /// Euclidean metric this is the squared distance. The default is the
    /// distance itself.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        self.dist(a, b)
    }

    /// Converts a true distance into surrogate units.
    #[inline]
    fn to_surrogate(&self, d: f64) -> f64 {
        d
    }
}

/// The Euclidean (L2) metric — the metric used in all of the paper's
/// experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b).sqrt()
    }

    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b)
    }

    #[inline]
    fn to_surrogate(&self, d: f64) -> f64 {
        d * d
    }
}

/// The squared Euclidean "metric".
///
/// Not a metric (it violates the triangle inequality) — provided only as a
/// building block for algorithms that explicitly work in squared space, such
/// as k-means' assignment step. It must **not** be used with the spatial
/// indexes, which rely on the triangle inequality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Metric for SquaredEuclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b)
    }
}

/// The Manhattan (L1) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }
}

/// The Chebyshev (L∞) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// The Minkowski (Lp) metric for a caller-chosen order `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an Lp metric.
    ///
    /// # Panics
    /// Panics if `p < 1` (the Lp "distance" is not a metric for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Minkowski order must be >= 1 to form a metric");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        let s: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum();
        s.powf(1.0 / self.p)
    }
}

/// A metric on arbitrary objects, for use with the M-tree and other
/// metric-space access methods.
pub trait MetricSpace<T: ?Sized>: Send + Sync {
    /// The distance between two objects.
    fn dist(&self, a: &T, b: &T) -> f64;
}

/// Adapts any [`Metric`] into a [`MetricSpace`] over coordinate vectors, so
/// vector data can be stored in metric-space indexes like the M-tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorSpace<M>(pub M);

impl<M: Metric> MetricSpace<[f64]> for VectorSpace<M> {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.0.dist(a, b)
    }
}

impl<M: Metric> MetricSpace<Vec<f64>> for VectorSpace<M> {
    #[inline]
    fn dist(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        self.0.dist(a, b)
    }
}

/// Levenshtein edit distance on strings — a genuine non-vector metric used
/// by the metric-space example and the M-tree tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

impl MetricSpace<str> for EditDistance {
    fn dist(&self, a: &str, b: &str) -> f64 {
        levenshtein(a, b) as f64
    }
}

impl MetricSpace<String> for EditDistance {
    fn dist(&self, a: &String, b: &String) -> f64 {
        levenshtein(a, b) as f64
    }
}

/// Classic two-row dynamic-programming Levenshtein distance, operating on
/// Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_basic() {
        let m = Euclidean;
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn euclidean_surrogate_is_squared() {
        let m = Euclidean;
        assert_eq!(m.surrogate(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(m.to_surrogate(5.0), 25.0);
    }

    #[test]
    fn manhattan_basic() {
        assert_eq!(Manhattan.dist(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn chebyshev_basic() {
        assert_eq!(Chebyshev.dist(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
        assert_eq!(Chebyshev.dist(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn minkowski_reduces_to_l1_l2() {
        let a = [0.3, -1.2, 4.0];
        let b = [2.0, 0.5, -0.25];
        assert!((Minkowski::new(1.0).dist(&a, &b) - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).dist(&a, &b) - Euclidean.dist(&a, &b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn minkowski_rejects_sub_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn edit_distance_metric_space() {
        let m = EditDistance;
        assert_eq!(m.dist("rust", "crust"), 1.0);
        let s1 = String::from("graph");
        let s2 = String::from("giraffe");
        assert_eq!(m.dist(&s1, &s2), levenshtein("graph", "giraffe") as f64);
    }

    #[test]
    fn vector_space_adapter_matches_inner_metric() {
        let vs = VectorSpace(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(MetricSpace::<[f64]>::dist(&vs, &a, &b), 5.0);
        assert_eq!(MetricSpace::<Vec<f64>>::dist(&vs, &a, &b), 5.0);
    }

    fn coords() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1e3..1e3f64, 3)
    }

    proptest! {
        #[test]
        fn euclidean_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Euclidean, &a, &b, &c);
        }

        #[test]
        fn manhattan_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Manhattan, &a, &b, &c);
        }

        #[test]
        fn chebyshev_axioms((a, b, c) in (coords(), coords(), coords())) {
            metric_axioms(&Chebyshev, &a, &b, &c);
        }

        #[test]
        fn minkowski_axioms((a, b, c, p) in (coords(), coords(), coords(), 1.0..5.0f64)) {
            metric_axioms(&Minkowski::new(p), &a, &b, &c);
        }

        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }
    }

    fn metric_axioms<M: Metric>(m: &M, a: &[f64], b: &[f64], c: &[f64]) {
        let ab = m.dist(a, b);
        let ba = m.dist(b, a);
        let aa = m.dist(a, a);
        assert!(ab >= 0.0, "non-negative");
        assert!(aa.abs() < 1e-9, "identity");
        assert!((ab - ba).abs() < 1e-9, "symmetry");
        let ac = m.dist(a, c);
        let cb = m.dist(c, b);
        assert!(ab <= ac + cb + 1e-9, "triangle: {ab} > {ac} + {cb}");
    }
}
