//! Owned point type.
//!
//! Most of the workspace operates on borrowed coordinate slices (`&[f64]`)
//! backed by the flat storage of a [`crate::Dataset`]; [`Point`] is the owned
//! counterpart used at API boundaries (e.g. cluster representatives that are
//! shipped between sites).

use std::fmt;

/// An owned point in a `d`-dimensional real vector space.
///
/// Coordinates are stored in a boxed slice so the type is two words plus the
/// heap payload and cheap to move. Equality is exact bitwise `f64` equality,
/// which is appropriate here because points are only compared for identity
/// (they are never the result of arithmetic).
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Panics
    /// Panics if `coords` is empty or contains a non-finite value: the
    /// clustering algorithms in this workspace assume finite coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point must have at least 1 dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Convenience constructor for 2-dimensional points (the paper's
    /// evaluation uses 2-d data throughout).
    pub fn xy(x: f64, y: f64) -> Self {
        Self::new(vec![x, y])
    }

    /// The dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point and returns its coordinates.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords.into_vec()
    }
}

impl std::ops::Index<usize> for Point {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Self::new(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Self::new(v.to_vec())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_indexes() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn xy_constructor() {
        let p = Point::xy(4.0, -1.5);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.coords(), &[4.0, -1.5]);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn rejects_empty() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Point::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinity() {
        let _ = Point::new(vec![f64::INFINITY]);
    }

    #[test]
    fn round_trips_through_into_coords() {
        let p = Point::new(vec![0.5, 0.25]);
        assert_eq!(p.clone().into_coords(), vec![0.5, 0.25]);
    }

    #[test]
    fn equality_is_exact() {
        assert_eq!(Point::xy(1.0, 2.0), Point::xy(1.0, 2.0));
        assert_ne!(Point::xy(1.0, 2.0), Point::xy(1.0, 2.0 + 1e-12));
    }

    #[test]
    fn debug_formats_coordinates() {
        assert_eq!(format!("{:?}", Point::xy(1.0, 2.5)), "Point(1, 2.5)");
    }
}
