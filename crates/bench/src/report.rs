//! Shared RunReport emission for every bench target.
//!
//! `bench_dbscan`, `bench_index`, `bench_par_dbscan`, and the
//! `dbdc-bench` harness binary all leave behind `BENCH_*.json` files in
//! the v2 [`RunReport`] schema — the same shape `dbdc-cli
//! --metrics-out` writes and `dbdc-cli report diff` compares — instead
//! of each hand-rolling its own output. This module holds the common
//! pieces: the environment fingerprint (so two bench files can be
//! compared knowing whether the host or toolchain moved), a dataset
//! checksum (so they can be compared knowing the *input* didn't), the
//! repetition-to-histogram sampler, and the repo-root writer.

use std::path::PathBuf;
use std::time::Instant;

use dbdc_geom::Dataset;
use dbdc_obs::{EnvFingerprint, Histogram, RunReport};

/// FNV-1a over the dataset's shape and exact coordinate bit patterns.
/// Two runs with equal checksums timed exactly the same input.
pub fn dataset_checksum(data: &Dataset) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&(data.dim() as u64).to_le_bytes());
    eat(&(data.len() as u64).to_le_bytes());
    for p in data.iter() {
        for &c in p {
            eat(&c.to_bits().to_le_bytes());
        }
    }
    format!("{h:016x}")
}

/// The producing environment: hardware parallelism, toolchain, git
/// revision, and the checksum of the input data. Fields that cannot be
/// determined (no `rustc`/`git` on PATH, detached tree) hold
/// `"unknown"` rather than failing the bench.
pub fn env_fingerprint(dataset_checksum: String) -> EnvFingerprint {
    let run = |cmd: &str, args: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd).args(args).output().ok()?;
        if !out.status.success() {
            return None;
        }
        let s = String::from_utf8(out.stdout).ok()?;
        let s = s.trim();
        (!s.is_empty()).then(|| s.to_string())
    };
    EnvFingerprint {
        nproc: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rustc: run("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        git_rev: run("git", &["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        dataset_checksum,
    }
}

/// Runs `f` `iters` times and collects each repetition's wall time (in
/// nanoseconds) into a [`Histogram`] — the cell format `report diff`
/// compares. One histogram per cell, one sample per repetition.
pub fn wall_histogram(iters: u32, mut f: impl FnMut()) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        h.record_duration(t0.elapsed());
    }
    h
}

/// The repository root (two levels up from this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Writes `report` as `BENCH_<name>.json` at the repository root — the
/// location the CI bench job uploads and diffs — and prints the path.
pub fn write_bench_json(name: &str, report: &RunReport) {
    let path = repo_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, report.to_json_string())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_input_sensitive() {
        let a = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        let b = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.5]);
        let c = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(dataset_checksum(&a), dataset_checksum(&a));
        assert_ne!(dataset_checksum(&a), dataset_checksum(&b));
        assert_ne!(dataset_checksum(&a), dataset_checksum(&c));
        assert_eq!(dataset_checksum(&a).len(), 16);
    }

    #[test]
    fn fingerprint_always_fills_every_field() {
        let env = env_fingerprint("abc".into());
        assert!(env.nproc >= 1);
        assert!(!env.rustc.is_empty());
        assert!(!env.git_rev.is_empty());
        assert_eq!(env.dataset_checksum, "abc");
    }

    #[test]
    fn wall_histogram_samples_once_per_repetition() {
        let mut runs = 0u32;
        let h = wall_histogram(5, || runs += 1);
        assert_eq!(runs, 5);
        assert_eq!(h.count(), 5);
    }
}
