//! Benchmark and figure-regeneration harness for the DBDC reproduction.
//!
//! Every table and figure of the paper's evaluation (Section 9) has a
//! regenerating experiment in [`experiments`]; the `figures` binary runs
//! them and prints the paper-shaped tables. The Criterion benches in
//! `benches/` cover the micro level (index queries, DBSCAN runs, quality
//! computation, and the Figure 7 comparison).

pub mod experiments;
pub mod report;
pub mod table;

use std::time::{Duration, Instant};

/// Runs `f` once and returns its result with the wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Milliseconds as f64, for report columns.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
