//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!   figures `<id>`...    run specific experiments (fig6 fig7a ... abl-wire)
//!   figures all          run everything in paper order
//!   figures --list       list experiment ids
//!
//! Reports are printed to stdout as markdown; redirect to a file to archive
//! (EXPERIMENTS.md embeds the output of `figures all` from a release run).

use dbdc_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures <id>... | all | --list");
        eprintln!("ids: {}", experiments::ALL_IDS.join(" "));
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                std::process::exit(1);
            }
        }
    }
}
