//! `dbdc-bench`: the continuous-benchmark harness.
//!
//! Runs the declarative matrix — datasets A/B/C × every index backend ×
//! thread counts 1/2/8 — through the full DBDC protocol and writes a
//! `RunReport` (`BENCH_dbdc.json` by default) whose `hists` section
//! holds two histograms per matrix cell, with one sample per
//! repetition:
//!
//! * `…/total_ns` — protocol wall time (min over [`RUNS_PER_SAMPLE`]
//!   back-to-back runs);
//! * `…/build_ns` — the slowest site's index-construction wall of the
//!   same runs (min across the sample's runs, like `total_ns`), so a
//!   regression in arena construction is visible separately from the
//!   query-dominated total;
//! * `…/eps_range_ns` — the *median per-query ε-range latency* of one
//!   latency-observed protocol run (all `local[i]/eps_range_ns` site
//!   histograms merged, then collapsed to their p50). The within-run
//!   median is already robust over thousands of queries, so one
//!   observed run per repetition suffices, and the across-rep spread
//!   stays tight enough for `report diff` to gate on.
//!
//! A second sweep covers the partitioned local phase: every dataset ×
//! index at `--threads 2` with [`PARTITIONS`] spatial stripes per site,
//! as `{set}/{kind}/t2/p{P}/total_ns` cells (partitioned mode builds
//! one private index per stripe, so there is no site-wide build wall to
//! sample).
//!
//! The report also carries a `quality` block: one DBCV score of the
//! distributed clustering per dataset (stored in `per_site` as
//! `a`/`b`/`c`, with their mean as the global value). The protocol is
//! fully seeded, so these are bit-identical across runs of the same
//! build — `report diff`'s directional quality gate catches any
//! clustering-quality regression with zero noise floor.
//!
//! `dbdc-cli report diff BENCH_baseline.json BENCH_dbdc.json` then
//! compares two such files cell by cell.
//!
//! Repetitions are interleaved (rep 0 of every cell, then rep 1, …) so
//! slow host drift — thermal throttling, a background job — spreads
//! across all cells instead of biasing the cells that happened to run
//! last. The per-cell spread that interleaving captures is exactly what
//! the diff uses as its noise floor.
//!
//! Quick mode (the default) truncates each dataset to a small prefix so
//! the whole matrix finishes in seconds on CI; `--full` runs the native
//! dataset sizes. Cell names are identical in both modes, so a quick
//! baseline diffs cleanly against a quick run.
//!
//! ```text
//! dbdc-bench [--reps N] [--out PATH] [--full]
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dbdc::{run_dbdc, run_dbdc_recorded, DbdcParams, Partitioner};
use dbdc_bench::report::{dataset_checksum, env_fingerprint};
use dbdc_cluster::dbcv::dbcv;
use dbdc_datagen::{dataset_a, dataset_b, dataset_c, GeneratedData};
use dbdc_geom::{Dataset, Euclidean};
use dbdc_index::IndexKind;
use dbdc_obs::{DatasetInfo, Histogram, NoopRecorder, QualityStats, RecordingRecorder, RunReport};

/// Thread counts each (dataset, index) pair is swept over.
const THREADS: [usize; 3] = [1, 2, 8];

/// Partition counts of the partitioned-local sweep (at `--threads 2`).
const PARTITIONS: [usize; 2] = [2, 4];

/// Quick mode keeps this many points per dataset. Sized so each cell
/// runs long enough (tens of milliseconds) that millisecond-scale OS
/// scheduling noise stays inside the diff's default tolerance.
const QUICK_POINTS: usize = 2_000;

/// Sites the protocol distributes every cell over.
const SITES: usize = 4;

/// Each recorded sample is the minimum wall over this many
/// back-to-back protocol runs. The min strips scheduler hiccups (a
/// preempted run only ever reads *slower*, never faster), so the
/// per-cell distribution reflects the code, not the host's mood —
/// which is what makes the diff's percentile gates stable enough to
/// hold on a shared machine.
const RUNS_PER_SAMPLE: u32 = 5;

struct Cli {
    reps: u32,
    out: String,
    full: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        reps: 20,
        out: "BENCH_dbdc.json".to_string(),
        full: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--reps" => {
                cli.reps = value("reps")?.parse().map_err(|e| format!("--reps: {e}"))?;
                if cli.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--out" => cli.out = value("out")?,
            "--full" => cli.full = true,
            "--help" | "-h" => {
                println!("usage: dbdc-bench [--reps N] [--out PATH] [--full]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

/// The first `n` points of `g.data` (ground truth is irrelevant here —
/// the harness times the protocol, it doesn't score quality).
fn truncate(g: &GeneratedData, n: usize) -> Dataset {
    let mut d = Dataset::with_capacity(g.data.dim(), n.min(g.data.len()));
    for p in g.data.iter().take(n) {
        d.push(p);
    }
    d
}

struct BenchDataset {
    name: &'static str,
    data: Dataset,
    eps: f64,
    min_pts: usize,
}

fn datasets(full: bool) -> Vec<BenchDataset> {
    [
        ("a", dataset_a(7)),
        ("b", dataset_b(7)),
        ("c", dataset_c(7)),
    ]
    .into_iter()
    .map(|(name, g)| BenchDataset {
        name,
        data: if full {
            g.data.clone()
        } else {
            truncate(&g, QUICK_POINTS)
        },
        eps: g.suggested_eps,
        min_pts: g.suggested_min_pts,
    })
    .collect()
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("dbdc-bench: {e}");
            std::process::exit(2);
        }
    };

    let sets = datasets(cli.full);
    // One checksum covering all three inputs, so the fingerprint pins
    // the exact data the matrix timed.
    let checksum = sets
        .iter()
        .map(|s| dataset_checksum(&s.data))
        .collect::<Vec<_>>()
        .join("-");
    let total_points: usize = sets.iter().map(|s| s.data.len()).sum();

    // Cell name → histogram of per-repetition protocol walls.
    let mut cells: BTreeMap<String, Histogram> = BTreeMap::new();
    let n_cells = sets.len() * IndexKind::ALL.len() * (THREADS.len() + PARTITIONS.len());
    eprintln!(
        "dbdc-bench: {n_cells} cells x {} reps ({} mode, {total_points} points total)",
        cli.reps,
        if cli.full { "full" } else { "quick" },
    );

    // Rep 0 is an unrecorded warmup pass: it touches every allocation
    // path and faults in the pages, so cold-start cost doesn't land in
    // one recorded cell.
    for rep in 0..cli.reps + 1 {
        for set in &sets {
            for kind in IndexKind::ALL {
                for threads in THREADS {
                    let params = DbdcParams::new(set.eps, set.min_pts)
                        .with_index(kind)
                        .with_threads(threads);
                    let runs = if rep == 0 { 1 } else { RUNS_PER_SAMPLE };
                    let mut wall = Duration::MAX;
                    let mut build = Duration::MAX;
                    for _ in 0..runs {
                        let t0 = Instant::now();
                        let outcome = run_dbdc(
                            &set.data,
                            &params,
                            Partitioner::RandomEqual { seed: 11 },
                            SITES,
                        );
                        wall = wall.min(t0.elapsed());
                        // The slowest site's index-construction wall: the
                        // build cost on the protocol's critical path.
                        build = build.min(
                            outcome
                                .timings
                                .build
                                .iter()
                                .copied()
                                .max()
                                .unwrap_or(Duration::ZERO),
                        );
                        std::hint::black_box(&outcome.assignment);
                    }
                    if rep == 0 {
                        continue;
                    }
                    let cell = format!("{}/{}/t{}/total_ns", set.name, kind.name(), threads);
                    cells.entry(cell).or_default().record_duration(wall);
                    let cell = format!("{}/{}/t{}/build_ns", set.name, kind.name(), threads);
                    cells.entry(cell).or_default().record_duration(build);
                    // One latency-observed run per repetition: merge the
                    // per-site ε-range query histograms and record their
                    // median as this rep's eps_range_ns sample.
                    let rec = RecordingRecorder::new();
                    let outcome = run_dbdc_recorded(
                        &set.data,
                        &params,
                        Partitioner::RandomEqual { seed: 11 },
                        SITES,
                        &rec,
                    );
                    std::hint::black_box(&outcome.assignment);
                    let mut merged = Histogram::default();
                    for (scope, h) in rec.hist_scopes() {
                        if scope.starts_with("local[") && scope.ends_with("/eps_range_ns") {
                            merged.merge(&h);
                        }
                    }
                    if !merged.is_empty() {
                        let cell =
                            format!("{}/{}/t{}/eps_range_ns", set.name, kind.name(), threads);
                        cells.entry(cell).or_default().record(merged.p50());
                    }
                }
                // The partitioned-local sweep: each site striped into P
                // ε-halo'd partitions, one private index per stripe, two
                // workers. The clustering is identical to the cells
                // above; only the wall should move.
                for parts in PARTITIONS {
                    let params = DbdcParams::new(set.eps, set.min_pts)
                        .with_index(kind)
                        .with_threads(2)
                        .with_partitions(parts);
                    let runs = if rep == 0 { 1 } else { RUNS_PER_SAMPLE };
                    let mut wall = Duration::MAX;
                    for _ in 0..runs {
                        let t0 = Instant::now();
                        let outcome = run_dbdc(
                            &set.data,
                            &params,
                            Partitioner::RandomEqual { seed: 11 },
                            SITES,
                        );
                        wall = wall.min(t0.elapsed());
                        std::hint::black_box(&outcome.assignment);
                    }
                    if rep == 0 {
                        continue;
                    }
                    let cell = format!("{}/{}/t2/p{}/total_ns", set.name, kind.name(), parts);
                    cells.entry(cell).or_default().record_duration(wall);
                }
            }
        }
        if rep == 0 {
            eprintln!("dbdc-bench: warmup done");
        } else {
            eprintln!("dbdc-bench: rep {}/{} done", rep, cli.reps);
        }
    }

    // One DBCV score per dataset (rstar, single-threaded — the index
    // and thread count cannot change the clustering, so one cell per
    // dataset suffices). Deterministic: same build + seed → same bits.
    let mut per_set = Vec::with_capacity(sets.len());
    let mut q_clusters = 0usize;
    let mut q_noise = 0usize;
    for set in &sets {
        let params = DbdcParams::new(set.eps, set.min_pts).with_index(IndexKind::RStar);
        let outcome = run_dbdc(
            &set.data,
            &params,
            Partitioner::RandomEqual { seed: 11 },
            SITES,
        );
        let q = dbcv(&set.data, &outcome.assignment, Euclidean, &NoopRecorder);
        eprintln!("dbdc-bench: dataset {} DBCV {:+.4}", set.name, q.value);
        q_clusters += q.n_clusters;
        q_noise += q.n_noise;
        per_set.push((set.name.to_string(), q.value));
    }
    let mean_dbcv = per_set.iter().map(|(_, v)| v).sum::<f64>() / per_set.len() as f64;
    let mut quality = QualityStats::from_dbcv(mean_dbcv, q_clusters, q_noise, Vec::new());
    quality.per_site = per_set;

    let mut report = RunReport::new("dbdc-bench")
        .with_param("reps", cli.reps)
        .with_param("mode", if cli.full { "full" } else { "quick" })
        .with_param("sites", SITES)
        .with_param("threads", THREADS.map(|t| t.to_string()).join(","));
    report.env = Some(env_fingerprint(checksum));
    report.dataset = Some(DatasetInfo {
        points: total_points,
        dim: 2,
    });
    report.hists = cells.into_iter().collect();
    report.quality = Some(quality);

    std::fs::write(&cli.out, report.to_json_string()).unwrap_or_else(|e| {
        eprintln!("dbdc-bench: write {}: {e}", cli.out);
        std::process::exit(1);
    });
    println!("{}", report.render());
    println!("wrote {}", cli.out);
}
