//! Minimal markdown table builder for the experiment reports.

/// A simple column-aligned markdown table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an f64 with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["n", "time"]);
        t.row(["10", "1.5"]).row(["100000", "23.75"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| n      |"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("100000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(97.0, 0), "97");
    }
}
