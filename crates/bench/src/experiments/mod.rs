//! One experiment per table/figure of the paper (plus the ablations from
//! DESIGN.md). Each experiment returns a self-contained markdown report;
//! the `figures` binary prints them and `EXPERIMENTS.md` archives them.
//!
//! Setting the environment variable `DBDC_QUICK=1` shrinks the workloads to
//! smoke-test size (used by the crate's tests); the reported tables in
//! EXPERIMENTS.md come from full-size release runs.

pub mod ablations;
pub mod ablations2;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 18] = [
    "fig6",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "abl-index",
    "abl-partition",
    "abl-optics",
    "abl-wire",
    "abl-pdbscan",
    "abl-rachet",
    "abl-tradeoff",
    "abl-failure",
    "abl-streaming",
];

/// Runs one experiment by id; `None` for unknown ids.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "fig6" => fig6::run(),
        "fig7a" => fig7::run_large(),
        "fig7b" => fig7::run_small(),
        "fig8a" => fig8::run_sites(),
        "fig8b" => fig8::run_speedup(),
        "fig9a" => fig9::run(fig9::Which::P1),
        "fig9b" => fig9::run(fig9::Which::P2),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "abl-index" => ablations::index(),
        "abl-partition" => ablations::partition(),
        "abl-optics" => ablations::optics(),
        "abl-wire" => ablations::wire(),
        "abl-pdbscan" => ablations::pdbscan(),
        "abl-rachet" => ablations::rachet(),
        "abl-tradeoff" => ablations2::tradeoff(),
        "abl-failure" => ablations2::failure(),
        "abl-streaming" => ablations2::streaming(),
        _ => return None,
    })
}

/// Whether quick (smoke-test) mode is active.
pub fn quick() -> bool {
    std::env::var("DBDC_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The shared RNG seed of all experiments — fixed for reproducibility.
pub const SEED: u64 = 2004; // the paper's year

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        for id in ALL_IDS {
            assert!(run_exists(id), "experiment {id} missing from registry");
        }
        assert!(run("nope").is_none());
    }

    fn run_exists(id: &str) -> bool {
        // Cheap existence check without executing: match the dispatch arms.
        ALL_IDS.contains(&id)
    }
}
