//! Second batch of ablations: the model-size/quality trade-off and
//! robustness to site failures.

use crate::table::{f, Table};
use dbdc::{
    central_dbscan, q_dbdc, relabel_site, run_dbdc, DbdcParams, EpsGlobal, ObjectQuality,
    Partitioner,
};
use dbdc_cluster::{dbscan_with_scp, DbscanParams};
use dbdc_datagen::scaled_a;
use dbdc_geom::{Clustering, Euclidean, Label};

use super::{quick, SEED};

fn workload() -> dbdc_datagen::GeneratedData {
    if quick() {
        scaled_a(2_000, SEED)
    } else {
        dbdc_datagen::dataset_a(SEED)
    }
}

/// `abl-tradeoff` — Section 5's "optimum trade-off between complexity and
/// accuracy", made concrete: sweeping `Eps_local` trades representative
/// count (model size) against distributed quality. Every row re-runs both
/// the central reference and DBDC at that ε.
pub fn tradeoff() -> String {
    let g = workload();
    let base_eps = g.suggested_eps;
    let mut t = Table::new([
        "Eps_local",
        "repr. [%]",
        "model bytes",
        "P^II vs central [%]",
    ]);
    for mult in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let eps = base_eps * mult;
        let params = DbdcParams::new(eps, g.suggested_min_pts)
            .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let (central, _) = central_dbscan(&g.data, &params);
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: SEED }, 4);
        let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        t.row([
            f(eps, 2),
            f(100.0 * outcome.representative_fraction(), 1),
            outcome.bytes_up.to_string(),
            f(100.0 * q.q, 1),
        ]);
    }
    format!(
        "## abl-tradeoff — model size vs quality as Eps_local varies (data set A, 4 sites)\n\nSmaller ε packs more specific core points (bigger models, finer detail); larger ε compresses harder. Quality is judged against the central run *at the same ε*.\n\n{}",
        t.render()
    )
}

/// `abl-failure` — what happens when sites fail to report.
///
/// The paper assumes all sites answer; a real deployment loses some. Here
/// the server builds the global model from a subset of the local models and
/// the *surviving* sites still relabel everything they have. Reported
/// quality is over the surviving sites' points, against the central
/// clustering restricted to the same points.
pub fn failure() -> String {
    let g = workload();
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    let sites = 8;
    let assignment = Partitioner::RandomEqual { seed: SEED }.assign(&g.data, sites);
    let (parts, back) = g.data.partition(sites, &assignment);
    // Local phase once per site.
    let mut models = Vec::new();
    let mut locals = Vec::new();
    for (site, part) in parts.iter().enumerate() {
        let idx = dbdc_index::build_index(params.index, part, Euclidean, params.eps_local);
        let scp = dbscan_with_scp(
            part,
            idx.as_ref(),
            &DbscanParams::new(params.eps_local, params.min_pts_local),
        );
        models.push(dbdc::build_local_model(
            dbdc::LocalModelKind::Scor,
            part,
            &scp,
            site as u32,
        ));
        locals.push(scp);
    }
    let mut t = Table::new([
        "failed sites",
        "global clusters",
        "P^II on surviving points [%]",
    ]);
    for failed in [0usize, 1, 2, 4] {
        let surviving: Vec<usize> = (failed..sites).collect();
        let surviving_models: Vec<dbdc::LocalModel> =
            surviving.iter().map(|&s| models[s].clone()).collect();
        let global = dbdc::build_global_model(&surviving_models, &params);
        // Relabel surviving sites; compare on their points only.
        let mut distr = Vec::new();
        let mut reference = Vec::new();
        for &s in &surviving {
            let labels = relabel_site(&parts[s], &locals[s].dbscan.clustering, &global);
            for (pos, &orig) in back[s].iter().enumerate() {
                distr.push(labels.label(pos as u32));
                reference.push(central.clustering.label(orig));
            }
        }
        let distr = Clustering::from_labels(distr);
        let reference = Clustering::from_labels(reference);
        let q = q_dbdc(&distr, &reference, ObjectQuality::PII);
        t.row([
            failed.to_string(),
            global.n_clusters.to_string(),
            f(100.0 * q.q, 1),
        ]);
    }
    format!(
        "## abl-failure — global model built from a subset of sites (data set A, {sites} sites)\n\nSites fail independently (the paper's client-independence assumption); the surviving sites' clustering quality should be unaffected because every site's model describes the same global cluster structure.\n\n{}",
        t.render()
    )
}

/// `abl-streaming` — the streaming sessions vs the batch pipeline.
///
/// Runs the full dataset through [`dbdc::ClientSession`]s in batches with
/// drift-gated transmissions and compares the final global clustering
/// against the batch pipeline and the central reference.
pub fn streaming() -> String {
    let g = if quick() {
        scaled_a(1_200, SEED)
    } else {
        scaled_a(6_000, SEED)
    };
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let sites = 4;
    let (central, _) = central_dbscan(&g.data, &params);
    let batch = run_dbdc(&g.data, &params, Partitioner::RoundRobin, sites);
    let q_batch = q_dbdc(&batch.assignment, &central.clustering, ObjectQuality::PII);

    let mut clients: Vec<dbdc::ClientSession> = (0..sites)
        .map(|s| dbdc::ClientSession::new(s as u32, 2, params))
        .collect();
    let mut server = dbdc::ServerSession::new(2, 2.0 * params.eps_local, &params);
    let mut transmissions = 0usize;
    let mut site_points: Vec<dbdc_geom::Dataset> = vec![dbdc_geom::Dataset::new(2); sites];
    let chunk = g.data.len() / 10;
    for (i, p) in g.data.iter().enumerate() {
        clients[i % sites].insert(p);
        site_points[i % sites].push(p);
        if (i + 1) % chunk == 0 || i + 1 == g.data.len() {
            for c in clients.iter_mut() {
                if c.drift() > 0.1 {
                    server.ingest(&c.take_model());
                    transmissions += 1;
                }
            }
        }
    }
    let global = server.snapshot();
    let mut full = vec![Label::Noise; g.data.len()];
    for (s, client) in clients.iter().enumerate() {
        let labels = relabel_site(&site_points[s], &client.clustering(), &global);
        for (pos, orig) in (s..g.data.len()).step_by(sites).enumerate() {
            full[orig] = labels.label(pos as u32);
        }
    }
    let stream_clustering = Clustering::from_labels(full);
    let q_stream = q_dbdc(&stream_clustering, &central.clustering, ObjectQuality::PII);

    let mut t = Table::new(["mode", "P^II vs central [%]", "model transmissions"]);
    t.row([
        "batch DBDC".to_string(),
        f(100.0 * q_batch.q, 1),
        sites.to_string(),
    ]);
    t.row([
        "streaming DBDC (drift-gated)".to_string(),
        f(100.0 * q_stream.q, 1),
        transmissions.to_string(),
    ]);
    format!(
        "## abl-streaming — incremental sessions vs the batch pipeline (dataset-A mixture, {sites} sites, 10 batches)\n\nStreaming clients maintain their clustering incrementally and re-send models only when the structure drifts; the server folds models in as they arrive (Section 6's incremental mode).\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_renders_monotone_model_sizes() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = tradeoff();
        assert!(r.contains("abl-tradeoff"));
        assert!(r.contains("model bytes"));
    }

    #[test]
    fn failure_keeps_surviving_quality_high() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = failure();
        assert!(r.contains("abl-failure"));
        // Four rows: 0, 1, 2, 4 failed sites.
        assert!(r.matches('\n').count() > 8);
    }

    #[test]
    fn streaming_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = streaming();
        assert!(r.contains("streaming DBDC"));
        assert!(r.contains("batch DBDC"));
    }
}
