//! Figure 9 — quality as a function of the `Eps_global` parameter.
//!
//! Data set A over 4 sites; `Eps_global` swept as a multiple of
//! `Eps_local`; quality measured with `P^I` (9a) and `P^II` (9b) against the
//! central DBSCAN reference, for both local models. The paper's findings:
//! `P^I` is flat (insensitive — a defect of the measure), while `P^II`
//! peaks around `Eps_global = 2·Eps_local` and degrades for extreme values.

use crate::table::{f, Table};
use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};
use dbdc_datagen::dataset_a;

use super::{quick, SEED};

/// Which object quality function the report uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 9a — discrete `P^I`.
    P1,
    /// Figure 9b — continuous `P^II`.
    P2,
}

/// One row of the sweep: quality of both local models at one multiplier.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// `Eps_global / Eps_local`.
    pub multiplier: f64,
    /// Quality of DBDC(REP_Scor) in percent.
    pub scor_q: f64,
    /// Quality of DBDC(REP_kMeans) in percent.
    pub kmeans_q: f64,
}

/// Runs the sweep for one quality function.
pub fn sweep(which: Which) -> Vec<Fig9Row> {
    let g = dataset_a(SEED);
    let (data, eps, min_pts) = if quick() {
        let small = dbdc_datagen::scaled_a(1_500, SEED);
        (small.data, small.suggested_eps, small.suggested_min_pts)
    } else {
        (g.data, g.suggested_eps, g.suggested_min_pts)
    };
    let base = DbdcParams::new(eps, min_pts);
    let (central, _) = central_dbscan(&data, &base);
    let multipliers: &[f64] = if quick() {
        &[1.0, 2.0, 4.0]
    } else {
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0]
    };
    let p = match which {
        Which::P1 => ObjectQuality::PI { qp: min_pts },
        Which::P2 => ObjectQuality::PII,
    };
    multipliers
        .iter()
        .map(|&m| {
            let params = base.with_eps_global(EpsGlobal::MultipleOfLocal(m));
            let q_of = |model: LocalModelKind| {
                let outcome = run_dbdc(
                    &data,
                    &params.with_model(model),
                    Partitioner::RandomEqual { seed: SEED },
                    4,
                );
                100.0 * q_dbdc(&outcome.assignment, &central.clustering, p).q
            };
            Fig9Row {
                multiplier: m,
                scor_q: q_of(LocalModelKind::Scor),
                kmeans_q: q_of(LocalModelKind::KMeans),
            }
        })
        .collect()
}

/// Renders the figure for one quality function.
pub fn run(which: Which) -> String {
    let rows = sweep(which);
    let (id, name) = match which {
        Which::P1 => ("fig9a", "P^I"),
        Which::P2 => ("fig9b", "P^II"),
    };
    let mut t = Table::new([
        "Eps_global / Eps_local",
        "Q REP_Scor [%]",
        "Q REP_kMeans [%]",
    ]);
    for r in &rows {
        t.row([f(r.multiplier, 1), f(r.scor_q, 1), f(r.kmeans_q, 1)]);
    }
    format!(
        "## {id} — quality ({name}) vs Eps_global (data set A, 4 sites)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualities_are_percentages() {
        std::env::set_var("DBDC_QUICK", "1");
        for which in [Which::P1, Which::P2] {
            let rows = sweep(which);
            for r in &rows {
                assert!((0.0..=100.0).contains(&r.scor_q), "{r:?}");
                assert!((0.0..=100.0).contains(&r.kmeans_q), "{r:?}");
            }
        }
    }

    #[test]
    fn p2_peaks_at_moderate_multiplier() {
        std::env::set_var("DBDC_QUICK", "1");
        let rows = sweep(Which::P2);
        // The 2x multiplier should beat at least one of the extremes.
        let at = |m: f64| rows.iter().find(|r| r.multiplier == m).unwrap().scor_q;
        assert!(at(2.0) + 1e-9 >= at(1.0).min(at(4.0)), "rows {rows:?}");
    }

    #[test]
    fn reports_render() {
        std::env::set_var("DBDC_QUICK", "1");
        assert!(run(Which::P1).contains("fig9a"));
        assert!(run(Which::P2).contains("fig9b"));
    }
}
