//! Ablations beyond the paper's figures, for the design decisions Section 6
//! of DESIGN.md calls out.

use crate::table::{f, Table};
use crate::{ms, timed};
use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, run_pdbscan, run_rachet, wire, DbdcParams, EpsGlobal,
    LocalModelKind, NetworkModel, ObjectQuality, Partitioner,
};
use dbdc_cluster::{dbscan, extract_dbscan, DbscanParams};
use dbdc_datagen::{dataset_a, scaled_a};
use dbdc_geom::Euclidean;
use dbdc_index::IndexKind;

use super::{quick, SEED};

fn workload() -> dbdc_datagen::GeneratedData {
    if quick() {
        scaled_a(2_000, SEED)
    } else {
        dataset_a(SEED)
    }
}

/// `abl-index` — DBSCAN runtime across neighborhood index backends.
///
/// The paper mandates an R*-tree; this quantifies what that choice costs or
/// saves against a linear scan, a uniform grid, and a kd-tree, and verifies
/// that all backends produce the identical clustering.
pub fn index() -> String {
    let g = workload();
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let mut t = Table::new(["index", "build+run [ms]", "clusters", "noise"]);
    let mut reference: Option<dbdc_geom::Clustering> = None;
    for kind in IndexKind::ALL {
        let (result, elapsed) = timed(|| {
            let idx = dbdc_index::build_index(kind, &g.data, Euclidean, params.eps);
            dbscan(&g.data, idx.as_ref(), &params)
        });
        match &reference {
            None => reference = Some(result.clustering.clone()),
            // Neighbor order differs per backend, which may flip border-
            // point ties; require structural equivalence.
            Some(r) => {
                let ari = dbdc_geom::adjusted_rand_index(r, &result.clustering);
                assert!(
                    ari > 0.999,
                    "index backends disagree structurally: ARI {ari}"
                );
            }
        }
        t.row([
            kind.name().to_string(),
            f(ms(elapsed), 1),
            result.clustering.n_clusters().to_string(),
            result.clustering.n_noise().to_string(),
        ]);
    }
    format!(
        "## abl-index — DBSCAN runtime by index backend (data set A)\n\nAll backends produce structurally identical clusterings (asserted, ARI > 0.999).\n\n{}",
        t.render()
    )
}

/// `abl-partition` — sensitivity of DBDC quality to the partitioning scheme.
///
/// The paper only evaluates the random equal split. Spatial striping is the
/// adversarial extreme: whole clusters land on single sites, so the local
/// models see full clusters (good) but cluster fragments at stripe
/// boundaries must be re-joined by the global model (hard).
pub fn partition() -> String {
    let g = workload();
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    let sites = 8;
    let mut t = Table::new(["partitioner", "P^II [%]", "repr. [%]"]);
    for part in [
        Partitioner::RandomEqual { seed: SEED },
        Partitioner::RoundRobin,
        Partitioner::SpatialStripes { axis: 0 },
    ] {
        let outcome = run_dbdc(&g.data, &params, part, sites);
        let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        t.row([
            part.name().to_string(),
            f(100.0 * q.q, 1),
            f(100.0 * outcome.representative_fraction(), 1),
        ]);
    }
    format!(
        "## abl-partition — quality by partitioning scheme (data set A, {sites} sites)\n\n{}",
        t.render()
    )
}

/// `abl-optics` — OPTICS as the global-model builder (Section 6's rejected
/// alternative).
///
/// The server computes the OPTICS ordering of the representatives once and
/// extracts flat clusterings at several cuts; the table compares the quality
/// of each cut against the DBSCAN-based global model at its default
/// Eps_global. This quantifies the flexibility the paper gave up (any cut
/// for free) and confirms the equivalence at the matching cut.
pub fn optics() -> String {
    use dbdc_cluster::optics as run_optics;
    let g = workload();
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    // Standard DBDC for the baseline row.
    let baseline = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: SEED }, 4);
    let q_base = q_dbdc(
        &baseline.assignment,
        &central.clustering,
        ObjectQuality::PII,
    );

    // Rebuild the representative set once, then cluster it with OPTICS.
    // (Re-running the pipeline manually to get at the representatives.)
    let assignment = Partitioner::RandomEqual { seed: SEED }.assign(&g.data, 4);
    let (parts, back) = g.data.partition(4, &assignment);
    let mut models = Vec::new();
    let mut locals = Vec::new();
    for (site, part) in parts.iter().enumerate() {
        let idx = dbdc_index::build_index(params.index, part, Euclidean, params.eps_local);
        let scp = dbdc_cluster::dbscan_with_scp(
            part,
            idx.as_ref(),
            &DbscanParams::new(params.eps_local, params.min_pts_local),
        );
        models.push(dbdc::build_local_model(
            LocalModelKind::Scor,
            part,
            &scp,
            site as u32,
        ));
        locals.push(scp);
    }
    let mut rep_points = dbdc_geom::Dataset::new(2);
    let mut rep_meta = Vec::new();
    for m in &models {
        for r in &m.reps {
            rep_points.push(r.point.coords());
            rep_meta.push((m.site, r.local_cluster, r.eps_range));
        }
    }
    let eps_max = 4.0 * params.eps_local;
    let idx = dbdc_index::LinearScan::new(&rep_points, Euclidean);
    let ordering = run_optics(&rep_points, &idx, &DbscanParams::new(eps_max, 2));

    let mut t = Table::new(["global model", "cut (×Eps_local)", "P^II [%]"]);
    t.row([
        "DBSCAN (paper)".to_string(),
        "2.0".to_string(),
        f(100.0 * q_base.q, 1),
    ]);
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let cut = mult * params.eps_local;
        let flat = extract_dbscan(&ordering, cut);
        // Wrap the flat clustering of representatives into a GlobalModel and
        // relabel each site with it.
        let mut next = flat
            .labels()
            .iter()
            .filter_map(|l| l.cluster())
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let reps: Vec<dbdc::GlobalRep> = rep_meta
            .iter()
            .enumerate()
            .map(|(i, &(site, local_cluster, eps_range))| {
                let global_cluster = match flat.label(i as u32) {
                    dbdc_geom::Label::Cluster(c) => c,
                    dbdc_geom::Label::Noise => {
                        let c = next;
                        next += 1;
                        c
                    }
                };
                dbdc::GlobalRep {
                    point: dbdc_geom::Point::from(rep_points.point(i as u32)),
                    eps_range,
                    site,
                    local_cluster,
                    global_cluster,
                }
            })
            .collect();
        let gm = dbdc::GlobalModel {
            dim: 2,
            reps,
            n_clusters: next,
            eps_global: cut,
        };
        let mut full = vec![dbdc_geom::Label::Noise; g.data.len()];
        for (site, ids) in back.iter().enumerate() {
            let labels = dbdc::relabel_site(&parts[site], &locals[site].dbscan.clustering, &gm);
            for (pos, &orig) in ids.iter().enumerate() {
                full[orig as usize] = labels.label(pos as u32);
            }
        }
        let clustering = dbdc_geom::Clustering::from_labels(full);
        let q = q_dbdc(&clustering, &central.clustering, ObjectQuality::PII);
        t.row(["OPTICS cut".to_string(), f(mult, 1), f(100.0 * q.q, 1)]);
    }
    format!(
        "## abl-optics — OPTICS-based global model vs DBSCAN global model (data set A, 4 sites)\n\nOne OPTICS run over the representatives yields every cut for free; the paper's DBSCAN choice must re-cluster per Eps_global.\n\n{}",
        t.render()
    )
}

/// `abl-wire` — transmission cost: raw data vs the two local models, with
/// simulated transfer times over three link classes.
pub fn wire() -> String {
    let g = workload();
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let sites = 4;
    let mut t = Table::new(["payload", "bytes", "vs raw", "LAN", "WAN", "slow uplink"]);
    let raw = wire::raw_data_bytes(g.data.len(), g.data.dim());
    let fmt_times = |bytes: usize| {
        [
            NetworkModel::lan(),
            NetworkModel::wan(),
            NetworkModel::slow_uplink(),
        ]
        .map(|m| format!("{:.1} ms", ms(m.transfer_time(bytes))))
    };
    let [lan, wan, slow] = fmt_times(raw);
    t.row([
        "raw data (centralize)".to_string(),
        raw.to_string(),
        "1.00".to_string(),
        lan,
        wan,
        slow,
    ]);
    for model in [LocalModelKind::Scor, LocalModelKind::KMeans] {
        let outcome = run_dbdc(
            &g.data,
            &params.with_model(model),
            Partitioner::RandomEqual { seed: SEED },
            sites,
        );
        let bytes = outcome.bytes_up;
        let [lan, wan, slow] = fmt_times(bytes);
        t.row([
            format!("{} models (all sites)", model.name()),
            bytes.to_string(),
            format!("{:.4}", bytes as f64 / raw as f64),
            lan,
            wan,
            slow,
        ]);
    }
    format!(
        "## abl-wire — transmission cost: raw data vs local models (data set A, {sites} sites)\n\n{}",
        t.render()
    )
}

/// `abl-pdbscan` — DBDC vs the exact parallel DBSCAN of the related work.
///
/// Xu et al.'s PDBSCAN (reference \[21\]) computes the *exact* central
/// clustering in parallel, at the price of replicating boundary halos and
/// exchanging merge messages; DBDC transmits only models and accepts an
/// approximate result. The table shows what each buys on the same data.
pub fn pdbscan() -> String {
    let g = workload();
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, central_time) = central_dbscan(&g.data, &params);
    let raw = wire::raw_data_bytes(g.data.len(), g.data.dim());
    let mut t = Table::new([
        "algorithm",
        "workers/sites",
        "total [ms]",
        "P^II vs central [%]",
        "bytes (data centralized)",
        "bytes (data born distributed)",
    ]);
    t.row([
        "central DBSCAN".to_string(),
        "1".to_string(),
        f(ms(central_time), 1),
        "100.0".to_string(),
        "0".to_string(),
        raw.to_string(),
    ]);
    for k in [4usize, 8] {
        let pd = run_pdbscan(&g.data, &params, k);
        let q = q_dbdc(&pd.clustering, &central.clustering, ObjectQuality::PII);
        t.row([
            "PDBSCAN (exact)".to_string(),
            k.to_string(),
            f(ms(pd.total()), 1),
            f(100.0 * q.q, 1),
            pd.bytes_moved.to_string(),
            // Born-distributed data must first be centralized, then the
            // stripes and halos redistributed.
            (pd.bytes_moved + 2 * raw).to_string(),
        ]);
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: SEED }, k);
        let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        let dbdc_bytes = outcome.bytes_up + outcome.bytes_down;
        t.row([
            "DBDC(REP_Scor)".to_string(),
            k.to_string(),
            f(ms(outcome.timings.dbdc_total()), 1),
            f(100.0 * q.q, 1),
            dbdc_bytes.to_string(),
            dbdc_bytes.to_string(),
        ]);
    }
    format!(
        "## abl-pdbscan — DBDC vs exact parallel DBSCAN (data set A)\n\nPDBSCAN reproduces the exact clustering but assumes the data sits on one server (the paper's Section 2.2 point): on born-distributed data it pays full centralization + stripe redistribution before its halo/merge traffic, while DBDC only ever ships models. With pre-centralized data, PDBSCAN's halo traffic is smaller than DBDC's model broadcast — exactness is cheap *if* you already moved the data.\n\n{}",
        t.render()
    )
}

/// `abl-rachet` — DBDC vs a RACHET-style hierarchical comparator.
///
/// Reference \[19\] merges locally built hierarchical clusterings through
/// centroid summaries. The comparator transmits even less than DBDC (one
/// summary per local cluster) but has no noise story and inherits single
/// link's noise sensitivity; this table measures both effects.
pub fn rachet() -> String {
    let g = if quick() {
        scaled_a(1_200, SEED)
    } else {
        // Single link is O(n²); a 4 000-point slice keeps the ablation
        // honest without minutes of Prim's algorithm.
        scaled_a(4_000, SEED)
    };
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    let sites = 4;
    let mut t = Table::new([
        "scheme",
        "P^II vs central [%]",
        "bytes up",
        "repr./summaries",
    ]);
    let assignment = Partitioner::RandomEqual { seed: SEED }.assign(&g.data, sites);
    let ra = run_rachet(&g.data, &params, &assignment, sites, 2.0 * params.eps_local);
    let q_r = q_dbdc(&ra.clustering, &central.clustering, ObjectQuality::PII);
    let dbdc = run_dbdc(
        &g.data,
        &params,
        Partitioner::RandomEqual { seed: SEED },
        sites,
    );
    let q_d = q_dbdc(&dbdc.assignment, &central.clustering, ObjectQuality::PII);
    t.row([
        "DBDC(REP_Scor)".to_string(),
        f(100.0 * q_d.q, 1),
        dbdc.bytes_up.to_string(),
        dbdc.n_representatives.to_string(),
    ]);
    t.row([
        "RACHET-style (single link + centroids)".to_string(),
        f(100.0 * q_r.q, 1),
        ra.bytes_up.to_string(),
        ra.n_summaries.to_string(),
    ]);
    format!(
        "## abl-rachet — DBDC vs hierarchical centroid merging (dataset-A mixture, {sites} sites)\n\nThe centroid scheme transmits less but cannot adopt foreign noise and chains through noise bridges (see the crate tests for the adversarial case).\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_ablation_asserts_agreement() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = index();
        assert!(r.contains("rstar"));
        assert!(r.contains("grid"));
        assert!(r.contains("identical clustering"));
    }

    #[test]
    fn partition_ablation_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = partition();
        assert!(r.contains("spatial-stripes"));
    }

    #[test]
    fn optics_ablation_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = optics();
        assert!(r.contains("OPTICS cut"));
        assert!(r.contains("DBSCAN (paper)"));
    }

    #[test]
    fn pdbscan_ablation_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = pdbscan();
        assert!(r.contains("PDBSCAN (exact)"));
        assert!(r.contains("DBDC(REP_Scor)"));
    }

    #[test]
    fn rachet_ablation_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = rachet();
        assert!(r.contains("RACHET-style"));
        assert!(r.contains("DBDC(REP_Scor)"));
    }

    #[test]
    fn wire_ablation_shows_savings() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = wire();
        assert!(r.contains("raw data"));
        assert!(r.contains("REP_Scor"));
        // The model rows show their size as a fraction of raw ("0.xxxx");
        // at quick scale the fraction is larger than on the real data set
        // but must stay below 1.
        assert!(r.contains("| 0."), "expected a sub-1 vs-raw fraction:\n{r}");
    }
}
