//! Figure 11 — quality on the three data sets A, B and C.
//!
//! 4 sites, `Eps_global = 2·Eps_local`, both local models, both quality
//! functions, plus (beyond the paper) the standard external measures ARI
//! and NMI against the same central reference, as an independent check on
//! the paper's bespoke quality functions.

use crate::table::{f, Table};
use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};
use dbdc_datagen::{dataset_a, dataset_b, dataset_c, GeneratedData};
use dbdc_geom::adjusted_rand_index;

use super::{quick, SEED};

/// One dataset × model measurement.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Dataset name ("A", "B", "C").
    pub set: &'static str,
    /// Local model name.
    pub model: &'static str,
    /// `Q` under `P^I`, percent.
    pub p1: f64,
    /// `Q` under `P^II`, percent.
    pub p2: f64,
    /// Adjusted Rand Index vs the central clustering (extension).
    pub ari: f64,
}

fn eval(set: &'static str, g: &GeneratedData) -> Vec<Fig11Row> {
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    [LocalModelKind::Scor, LocalModelKind::KMeans]
        .into_iter()
        .map(|model| {
            let outcome = run_dbdc(
                &g.data,
                &params.with_model(model),
                Partitioner::RandomEqual { seed: SEED },
                4,
            );
            Fig11Row {
                set,
                model: model.name(),
                p1: 100.0
                    * q_dbdc(
                        &outcome.assignment,
                        &central.clustering,
                        ObjectQuality::PI {
                            qp: g.suggested_min_pts,
                        },
                    )
                    .q,
                p2: 100.0 * q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII).q,
                ari: adjusted_rand_index(&outcome.assignment, &central.clustering),
            }
        })
        .collect()
}

/// Runs the evaluation on A, B and C.
pub fn sweep() -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    if quick() {
        rows.extend(eval("C", &dataset_c(SEED)));
    } else {
        rows.extend(eval("A", &dataset_a(SEED)));
        rows.extend(eval("B", &dataset_b(SEED)));
        rows.extend(eval("C", &dataset_c(SEED)));
    }
    rows
}

/// Renders the figure.
pub fn run() -> String {
    let rows = sweep();
    let mut t = Table::new(["set", "model", "P^I [%]", "P^II [%]", "ARI"]);
    for r in &rows {
        t.row([
            r.set.to_string(),
            r.model.to_string(),
            f(r.p1, 0),
            f(r.p2, 0),
            f(r.ari, 3),
        ]);
    }
    format!(
        "## fig11 — quality on data sets A, B, C (4 sites, Eps_global = 2·Eps_local)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_dataset_scores_high() {
        std::env::set_var("DBDC_QUICK", "1");
        let rows = sweep();
        assert_eq!(rows.len(), 2); // C × two models
        for r in &rows {
            assert!(r.p2 > 80.0, "{r:?}");
            assert!(r.ari > 0.8, "{r:?}");
        }
    }

    #[test]
    fn report_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = run();
        assert!(r.contains("fig11"));
        assert!(r.contains("ARI"));
    }
}
