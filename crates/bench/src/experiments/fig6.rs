//! Figure 6 — the three test data sets.
//!
//! The paper shows scatter plots of the data sets A, B and C on the central
//! site. This experiment regenerates the sets, reports their vital
//! statistics, and renders a coarse ASCII density map of each so the shapes
//! can be eyeballed in a terminal.

use crate::table::Table;
use dbdc_datagen::{dataset_a, dataset_b, dataset_c, GeneratedData};
use dbdc_geom::Dataset;

use super::SEED;

/// Renders an `w`×`h` character density map of a 2-d dataset.
pub fn ascii_density(data: &Dataset, w: usize, h: usize) -> String {
    let Some(bbox) = data.bounding_rect() else {
        return String::from("(empty)\n");
    };
    let (x0, y0) = (bbox.lo()[0], bbox.lo()[1]);
    let (x1, y1) = (bbox.hi()[0], bbox.hi()[1]);
    let mut counts = vec![0usize; w * h];
    for p in data.iter() {
        let cx = (((p[0] - x0) / (x1 - x0).max(1e-12)) * (w as f64 - 1.0)).round() as usize;
        let cy = (((p[1] - y0) / (y1 - y0).max(1e-12)) * (h as f64 - 1.0)).round() as usize;
        counts[cy.min(h - 1) * w + cx.min(w - 1)] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((w + 1) * h);
    for row in (0..h).rev() {
        for col in 0..w {
            let c = counts[row * w + col];
            let idx = if c == 0 {
                0
            } else {
                1 + (c * (ramp.len() - 2)) / max
            };
            out.push(ramp[idx.min(ramp.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

fn describe(name: &str, g: &GeneratedData, t: &mut Table) {
    t.row([
        name.to_string(),
        g.data.len().to_string(),
        g.truth.n_clusters().to_string(),
        format!(
            "{:.1}",
            100.0 * g.truth.n_noise() as f64 / g.data.len() as f64
        ),
        format!("{}", g.suggested_eps),
        g.suggested_min_pts.to_string(),
    ]);
}

/// Regenerates Figure 6. Also writes SVG scatter plots (points colored by
/// ground truth) to `figures_out/` when the directory can be created.
pub fn run() -> String {
    let a = dataset_a(SEED);
    let b = dataset_b(SEED);
    let c = dataset_c(SEED);
    let mut t = Table::new([
        "set",
        "objects",
        "clusters",
        "noise %",
        "eps_local",
        "min_pts",
    ]);
    describe("A", &a, &mut t);
    describe("B", &b, &mut t);
    describe("C", &c, &mut t);
    let mut out = String::new();
    out.push_str("## fig6 — test data sets A, B, C\n\n");
    out.push_str(&t.render());
    let svg_dir = std::path::Path::new("figures_out");
    let svg_ok = std::fs::create_dir_all(svg_dir).is_ok();
    for (name, g) in [("A", &a), ("B", &b), ("C", &c)] {
        out.push_str(&format!("\n### data set {name} (density map)\n```\n"));
        out.push_str(&ascii_density(&g.data, 64, 20));
        out.push_str("```\n");
        if svg_ok {
            let svg = dbdc_geom::svg::scatter_svg(
                &g.data,
                Some(&g.truth),
                &[],
                &dbdc_geom::svg::SvgOptions {
                    title: format!("data set {name} ({} points)", g.data.len()),
                    ..Default::default()
                },
            );
            let path = svg_dir.join(format!("fig6_{}.svg", name.to_lowercase()));
            if std::fs::write(&path, svg).is_ok() {
                out.push_str(&format!("\nSVG: `{}`\n", path.display()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sets() {
        let r = run();
        assert!(r.contains("| A"));
        assert!(r.contains("| B"));
        assert!(r.contains("| C"));
        assert!(r.contains("8700"));
        assert!(r.contains("4000"));
        assert!(r.contains("1021"));
    }

    #[test]
    fn density_map_shape() {
        let g = dataset_c(1);
        let map = ascii_density(&g.data, 40, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        // Three blobs -> plenty of dark cells and plenty of empty space.
        let dark = map
            .chars()
            .filter(|&c| c == '@' || c == '%' || c == '#')
            .count();
        let blank = map.chars().filter(|&c| c == ' ').count();
        assert!(dark > 0);
        assert!(blank > 100);
    }

    #[test]
    fn empty_dataset_renders_placeholder() {
        let d = Dataset::new(2);
        assert_eq!(ascii_density(&d, 10, 5), "(empty)\n");
    }
}
