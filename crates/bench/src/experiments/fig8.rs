//! Figure 8 — overall runtime and speed-up of DBDC(REP_Scor) as a function
//! of the number of client sites, on a 203 000-point dataset-A-like set.
//!
//! The paper reports a speed-up between `O(n)` and `O(n²)` in the number of
//! sites, because DBSCAN's cost is superlinear in the per-site cardinality
//! (with an index: `n log n` to `n²`), so splitting the data across `k`
//! sites shrinks the dominant local phase superlinearly.

use crate::ms;
use crate::table::{f, Table};
use dbdc::{central_dbscan, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, Partitioner};
use dbdc_datagen::scaled_a;

use super::{quick, SEED};

/// One row of the site sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Number of client sites.
    pub sites: usize,
    /// DBDC(REP_Scor) overall runtime (ms).
    pub dbdc_ms: f64,
    /// Central DBSCAN runtime on the full set (ms) — constant per sweep.
    pub central_ms: f64,
}

impl Fig8Row {
    /// Speed-up of DBDC over the central run.
    pub fn speedup(&self) -> f64 {
        self.central_ms / self.dbdc_ms
    }
}

/// Runs the sweep.
pub fn sweep() -> Vec<Fig8Row> {
    let n = if quick() { 5_000 } else { 203_000 };
    let site_counts: &[usize] = if quick() {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 6, 8, 10, 12, 16, 20]
    };
    let g = scaled_a(n, SEED);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
        .with_model(LocalModelKind::Scor);
    let (_, central) = central_dbscan(&g.data, &params);
    let central_ms = ms(central);
    site_counts
        .iter()
        .map(|&sites| {
            let outcome = run_dbdc(
                &g.data,
                &params,
                Partitioner::RandomEqual { seed: SEED },
                sites,
            );
            Fig8Row {
                sites,
                dbdc_ms: ms(outcome.timings.dbdc_total()),
                central_ms,
            }
        })
        .collect()
}

/// Figure 8a: runtime vs number of sites.
pub fn run_sites() -> String {
    let rows = sweep();
    let mut t = Table::new(["sites", "DBDC(REP_Scor) [ms]", "central [ms]"]);
    for r in &rows {
        t.row([r.sites.to_string(), f(r.dbdc_ms, 1), f(r.central_ms, 1)]);
    }
    format!(
        "## fig8a — overall runtime vs number of sites (203 000 points)\n\n{}",
        t.render()
    )
}

/// Figure 8b: speed-up vs number of sites.
pub fn run_speedup() -> String {
    let rows = sweep();
    let mut t = Table::new(["sites", "speedup vs central"]);
    for r in &rows {
        t.row([r.sites.to_string(), f(r.speedup(), 2)]);
    }
    format!(
        "## fig8b — speed-up of DBDC(REP_Scor) vs central DBSCAN (203 000 points)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_sites() {
        std::env::set_var("DBDC_QUICK", "1");
        let rows = sweep();
        assert_eq!(rows.len(), 3);
        // More sites -> smaller local phase -> faster DBDC. Allow noise on
        // the tiny quick workload by only requiring the trend end-to-end.
        assert!(
            rows.last().unwrap().dbdc_ms <= rows[0].dbdc_ms * 1.5,
            "rows: {rows:?}"
        );
        for r in &rows {
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn reports_render() {
        std::env::set_var("DBDC_QUICK", "1");
        assert!(run_sites().contains("fig8a"));
        assert!(run_speedup().contains("speedup"));
    }
}
