//! Figure 7 — overall runtime of central vs distributed clustering as the
//! cardinality of (dataset-A-like) data grows.
//!
//! 7a sweeps large cardinalities, 7b small ones. For each `n`, the data is
//! spread over 4 sites and we report: central DBSCAN time, DBDC time under
//! both local models (the paper's cost model — slowest local phase plus the
//! global phase), and the resulting speed-up factors. The paper's headline:
//! at 100 000 points both DBDC variants beat central clustering by more
//! than an order of magnitude, while for small data sets DBDC is slightly
//! slower.

use crate::ms;
use crate::table::{f, Table};
use dbdc::{central_dbscan, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, Partitioner};
use dbdc_datagen::scaled_a;

use super::{quick, SEED};

/// One row of the Figure 7 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Dataset cardinality.
    pub n: usize,
    /// Central DBSCAN wall time (ms).
    pub central_ms: f64,
    /// DBDC(REP_Scor) overall runtime under the paper's cost model (ms).
    pub scor_ms: f64,
    /// DBDC(REP_kMeans) overall runtime (ms).
    pub kmeans_ms: f64,
}

/// Runs the sweep for the given cardinalities over `n_sites` sites.
pub fn sweep(ns: &[usize], n_sites: usize) -> Vec<Fig7Row> {
    let mut rows = Vec::with_capacity(ns.len());
    for &n in ns {
        let g = scaled_a(n, SEED);
        let base = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
            .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let (_, central) = central_dbscan(&g.data, &base);
        let part = Partitioner::RandomEqual { seed: SEED };
        let scor = run_dbdc(
            &g.data,
            &base.with_model(LocalModelKind::Scor),
            part,
            n_sites,
        );
        let kmeans = run_dbdc(
            &g.data,
            &base.with_model(LocalModelKind::KMeans),
            part,
            n_sites,
        );
        rows.push(Fig7Row {
            n,
            central_ms: ms(central),
            scor_ms: ms(scor.timings.dbdc_total()),
            kmeans_ms: ms(kmeans.timings.dbdc_total()),
        });
    }
    rows
}

fn render(title: &str, rows: &[Fig7Row]) -> String {
    let mut t = Table::new([
        "n",
        "central [ms]",
        "DBDC(REP_Scor) [ms]",
        "DBDC(REP_kMeans) [ms]",
        "speedup Scor",
        "speedup kMeans",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            f(r.central_ms, 1),
            f(r.scor_ms, 1),
            f(r.kmeans_ms, 1),
            f(r.central_ms / r.scor_ms, 2),
            f(r.central_ms / r.kmeans_ms, 2),
        ]);
    }
    format!("## {title}\n\n{}", t.render())
}

/// Figure 7a: high cardinalities.
pub fn run_large() -> String {
    let ns: &[usize] = if quick() {
        &[2_000, 4_000]
    } else {
        &[10_000, 25_000, 50_000, 100_000, 200_000]
    };
    render(
        "fig7a — overall runtime, central vs DBDC, large cardinalities (4 sites)",
        &sweep(ns, 4),
    )
}

/// Figure 7b: small cardinalities.
pub fn run_small() -> String {
    let ns: &[usize] = if quick() {
        &[500, 1_000]
    } else {
        &[1_000, 2_500, 5_000, 7_500, 10_000]
    };
    render(
        "fig7b — overall runtime, central vs DBDC, small cardinalities (4 sites)",
        &sweep(ns, 4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_ns() {
        let rows = sweep(&[500, 1_500], 3);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].n < rows[1].n);
        for r in &rows {
            assert!(r.central_ms > 0.0);
            assert!(r.scor_ms > 0.0);
            assert!(r.kmeans_ms > 0.0);
        }
    }

    #[test]
    fn report_renders() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = run_small();
        assert!(r.contains("fig7b"));
        assert!(r.contains("speedup"));
    }
}
