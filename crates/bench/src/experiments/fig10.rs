//! Figure 10 (the paper's table) — quality vs the number of client sites.
//!
//! Data set A, `Eps_global = 2·Eps_local`, sites ∈ {2, 4, 5, 8, 10, 14,
//! 20}. For each row: the fraction of the data transmitted as local
//! representatives, and `Q_DBDC` under `P^I` and `P^II` for both local
//! models. The paper reads two things off this table: `P^I` saturates at
//! 98–99% regardless of the site count (hence unsuitable), while `P^II`
//! stays high but degrades gently for many sites.

use crate::table::{f, Table};
use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};
use dbdc_datagen::dataset_a;

use super::{quick, SEED};

/// One row of the table.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Row {
    /// Number of client sites.
    pub sites: usize,
    /// Representatives as a percentage of the dataset (REP_Scor run).
    pub rep_pct: f64,
    /// `Q` under `P^I` for REP_kMeans, percent.
    pub kmeans_p1: f64,
    /// `Q` under `P^II` for REP_kMeans, percent.
    pub kmeans_p2: f64,
    /// `Q` under `P^I` for REP_Scor, percent.
    pub scor_p1: f64,
    /// `Q` under `P^II` for REP_Scor, percent.
    pub scor_p2: f64,
}

/// Runs the site sweep.
pub fn sweep() -> Vec<Fig10Row> {
    let (data, eps, min_pts) = if quick() {
        let g = dbdc_datagen::scaled_a(1_500, SEED);
        (g.data, g.suggested_eps, g.suggested_min_pts)
    } else {
        let g = dataset_a(SEED);
        (g.data, g.suggested_eps, g.suggested_min_pts)
    };
    let params = DbdcParams::new(eps, min_pts).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&data, &params);
    let p1 = ObjectQuality::PI { qp: min_pts };
    let p2 = ObjectQuality::PII;
    let site_counts: &[usize] = if quick() {
        &[2, 4]
    } else {
        &[2, 4, 5, 8, 10, 14, 20]
    };
    site_counts
        .iter()
        .map(|&sites| {
            let part = Partitioner::RandomEqual { seed: SEED };
            let scor = run_dbdc(&data, &params.with_model(LocalModelKind::Scor), part, sites);
            let kmeans = run_dbdc(
                &data,
                &params.with_model(LocalModelKind::KMeans),
                part,
                sites,
            );
            Fig10Row {
                sites,
                rep_pct: 100.0 * scor.representative_fraction(),
                kmeans_p1: 100.0 * q_dbdc(&kmeans.assignment, &central.clustering, p1).q,
                kmeans_p2: 100.0 * q_dbdc(&kmeans.assignment, &central.clustering, p2).q,
                scor_p1: 100.0 * q_dbdc(&scor.assignment, &central.clustering, p1).q,
                scor_p2: 100.0 * q_dbdc(&scor.assignment, &central.clustering, p2).q,
            }
        })
        .collect()
}

/// Renders the table.
pub fn run() -> String {
    let rows = sweep();
    let mut t = Table::new([
        "sites",
        "local repr. [%]",
        "kMeans P^I",
        "kMeans P^II",
        "Scor P^I",
        "Scor P^II",
    ]);
    for r in &rows {
        t.row([
            r.sites.to_string(),
            f(r.rep_pct, 0),
            f(r.kmeans_p1, 0),
            f(r.kmeans_p2, 0),
            f(r.scor_p1, 0),
            f(r.scor_p2, 0),
        ]);
    }
    format!(
        "## fig10 — quality vs number of sites (data set A, Eps_global = 2·Eps_local)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualities_stay_high_on_few_sites() {
        std::env::set_var("DBDC_QUICK", "1");
        let rows = sweep();
        let first = &rows[0];
        assert!(first.scor_p2 > 60.0, "{first:?}");
        assert!(first.kmeans_p2 > 60.0, "{first:?}");
        assert!((0.0..=100.0).contains(&first.rep_pct));
    }

    #[test]
    fn report_renders_all_rows() {
        std::env::set_var("DBDC_QUICK", "1");
        let r = run();
        assert!(r.contains("fig10"));
        assert!(r.contains("local repr."));
    }
}
