//! Criterion companion of Figure 7: central DBSCAN vs the full DBDC
//! pipeline (both local models) at a fixed cardinality, plus the threaded
//! runtime. The `figures fig7a`/`fig7b` binary produces the full sweep; this
//! bench gives statistically solid numbers at one point of the curve.

use criterion::{criterion_group, criterion_main, Criterion};
use dbdc::{
    central_dbscan, run_dbdc, run_dbdc_threaded, DbdcParams, EpsGlobal, LocalModelKind, Partitioner,
};
use dbdc_datagen::scaled_a;
use std::hint::black_box;

const N: usize = 10_000;
const SITES: usize = 4;

fn bench_central_vs_dbdc(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let mut group = c.benchmark_group("fig7_10k_4sites");
    group.sample_size(10);
    group.bench_function("central_dbscan", |b| {
        b.iter(|| black_box(central_dbscan(&g.data, &params)));
    });
    group.bench_function("dbdc_rep_scor", |b| {
        b.iter(|| {
            black_box(run_dbdc(
                &g.data,
                &params.with_model(LocalModelKind::Scor),
                Partitioner::RandomEqual { seed: 7 },
                SITES,
            ))
        });
    });
    group.bench_function("dbdc_rep_kmeans", |b| {
        b.iter(|| {
            black_box(run_dbdc(
                &g.data,
                &params.with_model(LocalModelKind::KMeans),
                Partitioner::RandomEqual { seed: 7 },
                SITES,
            ))
        });
    });
    group.bench_function("dbdc_rep_scor_threaded", |b| {
        b.iter(|| {
            black_box(run_dbdc_threaded(
                &g.data,
                &params.with_model(LocalModelKind::Scor),
                Partitioner::RandomEqual { seed: 7 },
                SITES,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_central_vs_dbdc);
criterion_main!(benches);
