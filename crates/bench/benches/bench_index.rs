//! Micro-benchmarks of the spatial index backends (the `abl-index`
//! companion): build cost and ε-range query cost on dataset-A-like data.
//!
//! Besides the criterion timings, the harness writes `BENCH_index.json`
//! at the repository root through [`dbdc_bench::report`]: a schema-v2
//! `RunReport` with a per-backend wall histogram for build, a batch of
//! ε-range queries, and a batch of knn queries, plus the environment
//! fingerprint — diffable with `dbdc-cli report diff`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dbdc_bench::report::{dataset_checksum, env_fingerprint, wall_histogram, write_bench_json};
use dbdc_datagen::scaled_a;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, IndexKind, NeighborIndex};
use dbdc_obs::{DatasetInfo, RunReport};
use std::hint::black_box;

const REPORT_ITERS: u32 = 5;
const QUERY_BATCH: u32 = 200;

const N: usize = 5_000;
const EPS: f64 = 1.0;

fn bench_build(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_build");
    for kind in IndexKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(build_index(k, &g.data, Euclidean, EPS)));
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_range_query");
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &g.data, Euclidean, EPS);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let mut out = Vec::new();
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 37) % N as u32;
                idx.range(g.data.point(i), EPS, &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_knn10");
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &g.data, Euclidean, EPS);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 37) % N as u32;
                black_box(idx.knn(g.data.point(i), 10))
            });
        });
    }
    group.finish();
}

fn bench_rstar_dynamic_insert(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    c.bench_function("rstar_dynamic_insert_2k", |b| {
        b.iter_batched(
            || dbdc_index::RStarTree::new(&g.data, Euclidean),
            |mut tree| {
                for i in 0..g.data.len() as u32 {
                    tree.insert(i);
                }
                black_box(tree.len())
            },
            BatchSize::SmallInput,
        );
    });
}

/// Emits `BENCH_index.json`: per-backend wall histograms for build and
/// query batches, timed outside criterion with [`wall_histogram`].
fn write_run_report(_c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut hists = Vec::new();
    for kind in IndexKind::ALL {
        hists.push((
            format!("{}/build_ns", kind.name()),
            wall_histogram(REPORT_ITERS, || {
                black_box(build_index(kind, &g.data, Euclidean, EPS));
            }),
        ));
        let idx = build_index(kind, &g.data, Euclidean, EPS);
        let mut out = Vec::new();
        let mut i = 0u32;
        hists.push((
            format!("{}/range_batch_ns", kind.name()),
            wall_histogram(REPORT_ITERS, || {
                for _ in 0..QUERY_BATCH {
                    i = (i + 37) % N as u32;
                    idx.range(g.data.point(i), EPS, &mut out);
                    black_box(out.len());
                }
            }),
        ));
        hists.push((
            format!("{}/knn10_batch_ns", kind.name()),
            wall_histogram(REPORT_ITERS, || {
                for _ in 0..QUERY_BATCH {
                    i = (i + 37) % N as u32;
                    black_box(idx.knn(g.data.point(i), 10));
                }
            }),
        ));
    }
    let mut report = RunReport::new("bench_index")
        .with_param("n", N)
        .with_param("eps", EPS)
        .with_param("query_batch", QUERY_BATCH)
        .with_param("report_iters", REPORT_ITERS);
    report.env = Some(env_fingerprint(dataset_checksum(&g.data)));
    report.dataset = Some(DatasetInfo {
        points: g.data.len(),
        dim: g.data.dim(),
    });
    report.hists = hists;
    write_bench_json("index", &report);
}

criterion_group!(
    benches,
    bench_build,
    bench_range_query,
    bench_knn,
    bench_rstar_dynamic_insert,
    write_run_report
);
criterion_main!(benches);
