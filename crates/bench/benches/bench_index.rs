//! Micro-benchmarks of the spatial index backends (the `abl-index`
//! companion): build cost and ε-range query cost on dataset-A-like data.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dbdc_datagen::scaled_a;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, IndexKind, NeighborIndex};
use std::hint::black_box;

const N: usize = 5_000;
const EPS: f64 = 1.0;

fn bench_build(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_build");
    for kind in IndexKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(build_index(k, &g.data, Euclidean, EPS)));
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_range_query");
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &g.data, Euclidean, EPS);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let mut out = Vec::new();
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 37) % N as u32;
                idx.range(g.data.point(i), EPS, &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let g = scaled_a(N, 7);
    let mut group = c.benchmark_group("index_knn10");
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &g.data, Euclidean, EPS);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 37) % N as u32;
                black_box(idx.knn(g.data.point(i), 10))
            });
        });
    }
    group.finish();
}

fn bench_rstar_dynamic_insert(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    c.bench_function("rstar_dynamic_insert_2k", |b| {
        b.iter_batched(
            || dbdc_index::RStarTree::new(&g.data, Euclidean),
            |mut tree| {
                for i in 0..g.data.len() as u32 {
                    tree.insert(i);
                }
                black_box(tree.len())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_range_query,
    bench_knn,
    bench_rstar_dynamic_insert
);
criterion_main!(benches);
