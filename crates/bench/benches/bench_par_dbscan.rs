//! Sequential vs. parallel DBSCAN on dataset C: the deterministic parallel
//! execution layer must produce identical labels while the ε-range query
//! phase scales with the worker count. Thread counts beyond the machine's
//! core count only measure scheduling overhead, so the sweep is still run
//! (the determinism contract must hold everywhere) but speedup claims
//! should be read against `std::thread::available_parallelism`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbdc_cluster::{dbscan, par_dbscan, DbscanParams};
use dbdc_datagen::dataset_c;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, IndexKind};
use std::hint::black_box;

fn bench_seq_vs_parallel(c: &mut Criterion) {
    let g = dataset_c(42);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);

    // The parallel path must be a drop-in replacement before it is worth
    // timing at all.
    let seq = dbscan(&g.data, idx.as_ref(), &params);
    for threads in [2usize, 4, 8] {
        let par = par_dbscan(&g.data, idx.as_ref(), &params, threads);
        assert_eq!(seq.clustering, par.clustering);
        assert_eq!(seq.core, par.core);
    }

    let mut group = c.benchmark_group("par_dbscan_dataset_c");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(par_dbscan(&g.data, idx.as_ref(), &params, t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_vs_parallel);
criterion_main!(benches);
