//! Sequential vs. parallel DBSCAN on dataset C: the deterministic parallel
//! execution layer must produce identical labels while the ε-range query
//! phase scales with the worker count. Thread counts beyond the machine's
//! core count only measure scheduling overhead, so the sweep is still run
//! (the determinism contract must hold everywhere) but speedup claims
//! should be read against `std::thread::available_parallelism`.
//!
//! Besides the criterion timings, the harness writes
//! `BENCH_par_dbscan.json` at the repository root: a `RunReport` (the
//! same schema `dbdc-cli --metrics-out` emits) with per-configuration
//! mean walls as spans and one observed run's work counters per
//! configuration. The timing loops run *unobserved* — the report's
//! counters come from separate instrumented runs, so the emitted means
//! are the no-op-recorder baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbdc_cluster::{dbscan, par_dbscan, par_dbscan_observed, DbscanParams};
use dbdc_datagen::dataset_c;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, build_index_observed, IndexKind};
use dbdc_obs::{DatasetInfo, Recorder, RecordingRecorder, RunReport, Span};
use std::hint::black_box;
use std::time::{Duration, Instant};

const REPORT_ITERS: u32 = 10;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn mean_wall(mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..REPORT_ITERS {
        f();
    }
    t0.elapsed() / REPORT_ITERS
}

fn bench_seq_vs_parallel(c: &mut Criterion) {
    let g = dataset_c(42);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);

    // The parallel path must be a drop-in replacement before it is worth
    // timing at all.
    let seq = dbscan(&g.data, idx.as_ref(), &params);
    for threads in [2usize, 4, 8] {
        let par = par_dbscan(&g.data, idx.as_ref(), &params, threads);
        assert_eq!(seq.clustering, par.clustering);
        assert_eq!(seq.core, par.core);
    }

    let mut group = c.benchmark_group("par_dbscan_dataset_c");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
    });
    for threads in THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(par_dbscan(&g.data, idx.as_ref(), &params, t)));
        });
    }
    group.finish();

    write_run_report(&g, &params);
}

/// Emits `BENCH_par_dbscan.json`: mean walls per configuration plus the
/// observed work counters of one instrumented run each.
fn write_run_report(g: &dbdc_datagen::GeneratedData, params: &DbscanParams) {
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let t0 = Instant::now();
    let mut root = Span::new("bench_par_dbscan", Duration::ZERO);
    root.push(Span::new(
        "sequential",
        mean_wall(|| {
            black_box(dbscan(&g.data, idx.as_ref(), params));
        }),
    ));
    for threads in THREAD_SWEEP {
        root.push(
            Span::new(
                format!("parallel[{threads}]"),
                mean_wall(|| {
                    black_box(par_dbscan(&g.data, idx.as_ref(), params, threads));
                }),
            )
            .with_threads(threads),
        );
    }
    root.wall = t0.elapsed();

    // Work counters: one observed run per configuration, outside the
    // timing loops.
    let rec = RecordingRecorder::new();
    let seq_sheet = rec.sheet("sequential").expect("recording recorder");
    let seq_idx = build_index_observed(
        IndexKind::RStar,
        &g.data,
        Euclidean,
        params.eps,
        Some(&seq_sheet),
    );
    dbscan(&g.data, seq_idx.as_ref(), params);
    let threads = 2usize;
    let par_sheet = rec
        .sheet(&format!("parallel[{threads}]"))
        .expect("recording recorder");
    let par_idx = build_index_observed(
        IndexKind::RStar,
        &g.data,
        Euclidean,
        params.eps,
        Some(&par_sheet),
    );
    par_dbscan_observed(&g.data, par_idx.as_ref(), params, threads, Some(&par_sheet));

    let mut report = RunReport::new("bench_par_dbscan")
        .with_param("dataset", "c")
        .with_param("eps", params.eps)
        .with_param("min_pts", params.min_pts)
        .with_param("index", IndexKind::RStar.name())
        .with_param("report_iters", REPORT_ITERS);
    report.dataset = Some(DatasetInfo {
        points: g.data.len(),
        dim: g.data.dim(),
    });
    report.spans = vec![root];
    report.scopes = rec.scopes();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par_dbscan.json");
    std::fs::write(path, report.to_json_string()).expect("write BENCH_par_dbscan.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_seq_vs_parallel);
criterion_main!(benches);
