//! Sequential vs. parallel DBSCAN on dataset C: the deterministic parallel
//! execution layer must produce identical labels while the ε-range query
//! phase scales with the worker count. Thread counts beyond the machine's
//! core count only measure scheduling overhead, so the sweep is still run
//! (the determinism contract must hold everywhere) but speedup claims
//! should be read against `std::thread::available_parallelism`.
//!
//! Besides the criterion timings, the harness writes
//! `BENCH_par_dbscan.json` at the repository root through
//! [`dbdc_bench::report`]: a schema-v2 `RunReport` (the same shape
//! `dbdc-cli --metrics-out` emits) with per-configuration mean walls as
//! spans, a per-configuration wall-time histogram (one sample per
//! repetition, the cells `report diff` compares), the environment
//! fingerprint, and one observed run's work counters per configuration.
//! The timing loops run *unobserved* — the report's counters come from
//! separate instrumented runs, so the emitted walls are the
//! no-op-recorder baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbdc_bench::report::{dataset_checksum, env_fingerprint, wall_histogram, write_bench_json};
use dbdc_cluster::{dbscan, par_dbscan, par_dbscan_observed, DbscanParams};
use dbdc_datagen::dataset_c;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, build_index_observed, IndexKind};
use dbdc_obs::{DatasetInfo, Recorder, RecordingRecorder, RunReport, Span};
use std::hint::black_box;
use std::time::{Duration, Instant};

const REPORT_ITERS: u32 = 10;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn bench_seq_vs_parallel(c: &mut Criterion) {
    let g = dataset_c(42);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);

    // The parallel path must be a drop-in replacement before it is worth
    // timing at all.
    let seq = dbscan(&g.data, idx.as_ref(), &params);
    for threads in [2usize, 4, 8] {
        let par = par_dbscan(&g.data, idx.as_ref(), &params, threads);
        assert_eq!(seq.clustering, par.clustering);
        assert_eq!(seq.core, par.core);
    }

    let mut group = c.benchmark_group("par_dbscan_dataset_c");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
    });
    for threads in THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(par_dbscan(&g.data, idx.as_ref(), &params, t)));
        });
    }
    group.finish();

    write_run_report(&g, &params);
}

/// Emits `BENCH_par_dbscan.json`: per-configuration wall histograms and
/// mean walls plus the observed work counters of one instrumented run
/// each.
fn write_run_report(g: &dbdc_datagen::GeneratedData, params: &DbscanParams) {
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let t0 = Instant::now();
    let mut hists = Vec::new();
    let mut root = Span::new("bench_par_dbscan", Duration::ZERO);
    let seq = wall_histogram(REPORT_ITERS, || {
        black_box(dbscan(&g.data, idx.as_ref(), params));
    });
    root.push(Span::new(
        "sequential",
        Duration::from_nanos(seq.mean() as u64),
    ));
    hists.push(("seq/total_ns".to_string(), seq));
    for threads in THREAD_SWEEP {
        let h = wall_histogram(REPORT_ITERS, || {
            black_box(par_dbscan(&g.data, idx.as_ref(), params, threads));
        });
        root.push(
            Span::new(
                format!("parallel[{threads}]"),
                Duration::from_nanos(h.mean() as u64),
            )
            .with_threads(threads),
        );
        hists.push((format!("par[{threads}]/total_ns"), h));
    }
    root.wall = t0.elapsed();

    // Work counters: one observed run per configuration, outside the
    // timing loops.
    let rec = RecordingRecorder::new();
    let seq_sheet = rec.sheet("sequential").expect("recording recorder");
    let seq_idx = build_index_observed(
        IndexKind::RStar,
        &g.data,
        Euclidean,
        params.eps,
        Some(&seq_sheet),
    );
    dbscan(&g.data, seq_idx.as_ref(), params);
    let threads = 2usize;
    let par_sheet = rec
        .sheet(&format!("parallel[{threads}]"))
        .expect("recording recorder");
    let par_idx = build_index_observed(
        IndexKind::RStar,
        &g.data,
        Euclidean,
        params.eps,
        Some(&par_sheet),
    );
    par_dbscan_observed(&g.data, par_idx.as_ref(), params, threads, Some(&par_sheet));

    let mut report = RunReport::new("bench_par_dbscan")
        .with_param("dataset", "c")
        .with_param("eps", params.eps)
        .with_param("min_pts", params.min_pts)
        .with_param("index", IndexKind::RStar.name())
        .with_param("report_iters", REPORT_ITERS);
    report.env = Some(env_fingerprint(dataset_checksum(&g.data)));
    report.dataset = Some(DatasetInfo {
        points: g.data.len(),
        dim: g.data.dim(),
    });
    report.spans = vec![root];
    report.scopes = rec.scopes();
    report.hists = hists;

    write_bench_json("par_dbscan", &report);
}

criterion_group!(benches, bench_seq_vs_parallel);
criterion_main!(benches);
