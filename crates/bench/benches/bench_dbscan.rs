//! DBSCAN micro-benchmarks: the plain algorithm, the enhanced run with
//! specific-core-point extraction (the paper's "on-the-fly" claim — the
//! overhead should be small), and OPTICS for comparison.
//!
//! Besides the criterion timings, the harness writes
//! `BENCH_dbscan.json` at the repository root through
//! [`dbdc_bench::report`]: a schema-v2 `RunReport` with one wall-time
//! histogram per configuration (one sample per repetition) and the
//! environment fingerprint, diffable with `dbdc-cli report diff`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbdc_bench::report::{dataset_checksum, env_fingerprint, wall_histogram, write_bench_json};
use dbdc_cluster::{dbscan, dbscan_with_scp, optics, DbscanParams};
use dbdc_datagen::scaled_a;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, IndexKind};
use dbdc_obs::{DatasetInfo, RunReport};
use std::hint::black_box;

const REPORT_ITERS: u32 = 5;

fn bench_dbscan_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    group.sample_size(20);
    for n in [1_000usize, 4_000, 8_700] {
        let g = scaled_a(n, 7);
        let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
        let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
        });
    }
    group.finish();
}

fn bench_scp_overhead(c: &mut Criterion) {
    let g = scaled_a(4_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let mut group = c.benchmark_group("scp_overhead");
    group.sample_size(20);
    group.bench_function("plain_dbscan", |b| {
        b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
    });
    group.bench_function("dbscan_with_scp", |b| {
        b.iter(|| black_box(dbscan_with_scp(&g.data, idx.as_ref(), &params)));
    });
    group.finish();
}

fn bench_optics(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let mut group = c.benchmark_group("optics");
    group.sample_size(10);
    group.bench_function("optics_2k", |b| {
        b.iter(|| black_box(optics(&g.data, idx.as_ref(), &params)));
    });
    group.finish();
}

/// Emits `BENCH_dbscan.json`: one wall histogram per configuration,
/// timed outside criterion with [`wall_histogram`].
fn write_run_report(_c: &mut Criterion) {
    let mut hists = Vec::new();
    let mut points = 0;
    for n in [1_000usize, 4_000, 8_700] {
        let g = scaled_a(n, 7);
        points = points.max(g.data.len());
        let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
        let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
        hists.push((
            format!("dbscan/n{n}/total_ns"),
            wall_histogram(REPORT_ITERS, || {
                black_box(dbscan(&g.data, idx.as_ref(), &params));
            }),
        ));
        if n == 4_000 {
            hists.push((
                format!("dbscan_with_scp/n{n}/total_ns"),
                wall_histogram(REPORT_ITERS, || {
                    black_box(dbscan_with_scp(&g.data, idx.as_ref(), &params));
                }),
            ));
        }
    }
    let g = scaled_a(8_700, 7);
    let mut report = RunReport::new("bench_dbscan")
        .with_param("index", IndexKind::RStar.name())
        .with_param("report_iters", REPORT_ITERS);
    report.env = Some(env_fingerprint(dataset_checksum(&g.data)));
    report.dataset = Some(DatasetInfo {
        points,
        dim: g.data.dim(),
    });
    report.hists = hists;
    write_bench_json("dbscan", &report);
}

criterion_group!(
    benches,
    bench_dbscan_sizes,
    bench_scp_overhead,
    bench_optics,
    write_run_report
);
criterion_main!(benches);
