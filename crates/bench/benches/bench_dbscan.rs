//! DBSCAN micro-benchmarks: the plain algorithm, the enhanced run with
//! specific-core-point extraction (the paper's "on-the-fly" claim — the
//! overhead should be small), and OPTICS for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbdc_cluster::{dbscan, dbscan_with_scp, optics, DbscanParams};
use dbdc_datagen::scaled_a;
use dbdc_geom::Euclidean;
use dbdc_index::{build_index, IndexKind};
use std::hint::black_box;

fn bench_dbscan_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    group.sample_size(20);
    for n in [1_000usize, 4_000, 8_700] {
        let g = scaled_a(n, 7);
        let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
        let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
        });
    }
    group.finish();
}

fn bench_scp_overhead(c: &mut Criterion) {
    let g = scaled_a(4_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let mut group = c.benchmark_group("scp_overhead");
    group.sample_size(20);
    group.bench_function("plain_dbscan", |b| {
        b.iter(|| black_box(dbscan(&g.data, idx.as_ref(), &params)));
    });
    group.bench_function("dbscan_with_scp", |b| {
        b.iter(|| black_box(dbscan_with_scp(&g.data, idx.as_ref(), &params)));
    });
    group.finish();
}

fn bench_optics(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(IndexKind::RStar, &g.data, Euclidean, params.eps);
    let mut group = c.benchmark_group("optics");
    group.sample_size(10);
    group.bench_function("optics_2k", |b| {
        b.iter(|| black_box(optics(&g.data, idx.as_ref(), &params)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dbscan_sizes,
    bench_scp_overhead,
    bench_optics
);
criterion_main!(benches);
