//! Quality-measure micro-benchmarks: the paper's `P^I`/`P^II` (which share
//! one contingency-table pass) against ARI and NMI, plus the wire codec.

use criterion::{criterion_group, criterion_main, Criterion};
use dbdc::{
    build_local_model, central_dbscan, q_dbdc, run_dbdc, wire, DbdcParams, EpsGlobal,
    LocalModelKind, ObjectQuality, Partitioner,
};
use dbdc_cluster::{dbscan_with_scp, DbscanParams};
use dbdc_datagen::scaled_a;
use dbdc_geom::{adjusted_rand_index, normalized_mutual_information, Euclidean};
use std::hint::black_box;

fn bench_quality_measures(c: &mut Criterion) {
    let g = scaled_a(8_700, 7);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 7 }, 4);
    let (d, ce) = (&outcome.assignment, &central.clustering);
    let mut group = c.benchmark_group("quality_8700");
    group.bench_function("q_dbdc_p1", |b| {
        b.iter(|| black_box(q_dbdc(d, ce, ObjectQuality::PI { qp: 5 })));
    });
    group.bench_function("q_dbdc_p2", |b| {
        b.iter(|| black_box(q_dbdc(d, ce, ObjectQuality::PII)));
    });
    group.bench_function("ari", |b| {
        b.iter(|| black_box(adjusted_rand_index(d, ce)));
    });
    group.bench_function("nmi", |b| {
        b.iter(|| black_box(normalized_mutual_information(d, ce)));
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let g = scaled_a(8_700, 7);
    let idx = dbdc_index::build_index(
        dbdc_index::IndexKind::RStar,
        &g.data,
        Euclidean,
        g.suggested_eps,
    );
    let scp = dbscan_with_scp(
        &g.data,
        idx.as_ref(),
        &DbscanParams::new(g.suggested_eps, g.suggested_min_pts),
    );
    let model = build_local_model(LocalModelKind::Scor, &g.data, &scp, 0);
    let encoded = wire::encode_local_model(&model).unwrap();
    let mut group = c.benchmark_group("wire_codec");
    group.bench_function("encode_local_model", |b| {
        b.iter(|| black_box(wire::encode_local_model(&model)));
    });
    group.bench_function("decode_local_model", |b| {
        b.iter(|| black_box(wire::decode_local_model(&encoded).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_quality_measures, bench_wire_codec);
criterion_main!(benches);
