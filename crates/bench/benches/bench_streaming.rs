//! Streaming substrate micro-benchmarks: incremental DBSCAN insert/remove
//! throughput and the streaming session round trip.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dbdc::{ClientSession, DbdcParams, EpsGlobal, ServerSession};
use dbdc_cluster::{DbscanParams, IncrementalDbscan};
use dbdc_datagen::scaled_a;
use std::hint::black_box;

fn bench_incremental_inserts(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    c.bench_function("incremental_dbscan_insert_2k", |b| {
        b.iter_batched(
            || IncrementalDbscan::new(2, params),
            |mut inc| {
                for p in g.data.iter() {
                    inc.insert(p);
                }
                black_box(inc.clustering().n_clusters())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_incremental_churn(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    c.bench_function("incremental_dbscan_churn_500", |b| {
        b.iter_batched(
            || {
                let mut inc = IncrementalDbscan::new(2, params);
                for p in g.data.iter() {
                    inc.insert(p);
                }
                inc
            },
            |mut inc| {
                // Remove and re-add a rolling window.
                for id in 0..500u32 {
                    inc.remove(id);
                }
                for id in 0..500u32 {
                    inc.insert(g.data.point(id));
                }
                black_box(inc.len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_streaming_round(c: &mut Criterion) {
    let g = scaled_a(2_000, 7);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    c.bench_function("streaming_session_round_2k_4sites", |b| {
        b.iter(|| {
            let mut clients: Vec<ClientSession> =
                (0..4).map(|s| ClientSession::new(s, 2, params)).collect();
            for (i, p) in g.data.iter().enumerate() {
                clients[i % 4].insert(p);
            }
            let mut server = ServerSession::new(2, 2.0 * params.eps_local, &params);
            for c in clients.iter_mut() {
                server.ingest(&c.take_model());
            }
            black_box(server.snapshot().n_clusters)
        });
    });
}

criterion_group!(
    benches,
    bench_incremental_inserts,
    bench_incremental_churn,
    bench_streaming_round
);
criterion_main!(benches);
