//! Counting-allocator proof of the zero-allocation hot path: once an
//! index and its query workspace are warm, ε-range queries on every
//! backend perform no heap allocations at all — the arena traversal
//! stacks, SoA leaf scans, and surrogate box bounds all run out of
//! stack buffers or reused capacity.
//!
//! The allocator wrapper counts *this thread's* allocation calls into a
//! thread-local, so concurrently running tests on other harness threads
//! cannot perturb the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dbdc_geom::{Dataset, Euclidean, Precision};
use dbdc_index::{build_index, build_index_opts, BuildOptions, IndexKind, QueryWorkspace};

struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Deterministic 2-d dataset (xorshift; no RNG crate so the allocator
/// sees nothing but the code under test).
fn dataset(n: usize) -> Dataset {
    let mut d = Dataset::with_capacity(2, n);
    let mut s = 0x1234_5678_9abc_def1u64;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 1_000) as f64 / 10.0 - 50.0
    };
    for _ in 0..n {
        let p = [next(), next()];
        d.push(&p);
    }
    d
}

#[test]
fn steady_state_range_queries_allocate_nothing() {
    let data = dataset(600);
    let eps = 4.0;
    for kind in IndexKind::ALL {
        let idx = build_index(kind, &data, Euclidean, eps);
        let mut out: Vec<u32> = Vec::new();
        let mut ws = QueryWorkspace::new();
        // Warm-up: one pass over the query set grows `out`, the
        // caller's workspace, and the thread-local fallback scratch to
        // their high-water capacities.
        for i in (0..data.len() as u32).step_by(7) {
            idx.range_with(data.point(i), eps, &mut out, &mut ws);
            idx.range(data.point(i), eps, &mut out);
        }

        let before = alloc_calls();
        for _ in 0..3 {
            for i in (0..data.len() as u32).step_by(7) {
                idx.range_with(data.point(i), eps, &mut out, &mut ws);
            }
        }
        assert_eq!(
            alloc_calls() - before,
            0,
            "{kind:?}: steady-state range_with must not allocate"
        );

        let before = alloc_calls();
        for _ in 0..3 {
            for i in (0..data.len() as u32).step_by(7) {
                idx.range(data.point(i), eps, &mut out);
            }
        }
        assert_eq!(
            alloc_calls() - before,
            0,
            "{kind:?}: steady-state range (thread-local scratch) must not allocate"
        );
    }
}

#[test]
fn partition_worker_loop_allocates_nothing_either_precision() {
    // The partitioned local phase gives every partition worker one
    // private index and ONE reused workspace + output buffer for all of
    // its owned points — exactly this loop. It must stay allocation-free
    // under both scan precisions (the f32 path narrows the query into a
    // stack buffer for dims ≤ 16, so opting in costs no allocations).
    let data = dataset(600);
    let eps = 4.0;
    for precision in [Precision::F64, Precision::F32] {
        for kind in IndexKind::ALL {
            let opts = BuildOptions {
                threads: 1,
                precision,
            };
            let idx = build_index_opts(kind, &data, Euclidean, eps, opts, None, None);
            let mut out: Vec<u32> = Vec::new();
            let mut ws = QueryWorkspace::new();
            for i in (0..data.len() as u32).step_by(7) {
                idx.range_with(data.point(i), eps, &mut out, &mut ws);
            }

            let before = alloc_calls();
            for _ in 0..3 {
                for i in (0..data.len() as u32).step_by(7) {
                    idx.range_with(data.point(i), eps, &mut out, &mut ws);
                }
            }
            assert_eq!(
                alloc_calls() - before,
                0,
                "{kind:?} ({precision:?}): the partition worker's query loop must not allocate"
            );
        }
    }
}
