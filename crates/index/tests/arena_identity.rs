//! Property-based construction-identity gate: on arbitrary data, the
//! parallel arena builders must produce bit-for-bit the sequential
//! arenas at every thread count, for all three flat-arena backends.
//! `arena_bits()` serializes node pools, bounds, id arenas, and the
//! SoA coordinate blocks (f64 and f32 alike) via `to_bits`, so any
//! divergence — a reordered subtree, a rebased offset off by one, a
//! narrowing applied in a different order — fails the equality.

use dbdc_geom::{Dataset, Euclidean, Precision};
use dbdc_index::{GridIndex, KdTree, RStarTree};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 0..400),
        1.0..6.0f64,
    )
        .prop_map(|(pts, stretch)| {
            let mut d = Dataset::new(2);
            for (x, y) in pts {
                d.push(&[x * stretch, y]);
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// kd-tree arenas are bit-identical across thread counts, under
    /// both precisions.
    #[test]
    fn kdtree_arenas_bit_identical(data in arb_dataset()) {
        for precision in [Precision::F64, Precision::F32] {
            let seq = KdTree::with_options(&data, Euclidean, 1, precision);
            for threads in [2usize, 3, 8] {
                let par = KdTree::with_options(&data, Euclidean, threads, precision);
                prop_assert_eq!(seq.arena_bits(), par.arena_bits(),
                    "kd arenas differ at {} threads ({:?})", threads, precision);
            }
        }
    }

    /// R*-tree flat arenas are bit-identical across thread counts,
    /// under both precisions.
    #[test]
    fn rstar_arenas_bit_identical(data in arb_dataset()) {
        for precision in [Precision::F64, Precision::F32] {
            let seq = RStarTree::bulk_load_opts(&data, Euclidean, 1, precision);
            for threads in [2usize, 3, 8] {
                let par = RStarTree::bulk_load_opts(&data, Euclidean, threads, precision);
                prop_assert_eq!(seq.arena_bits(), par.arena_bits(),
                    "r* arenas differ at {} threads ({:?})", threads, precision);
            }
        }
    }

    /// Grid cell-table and packed arenas are bit-identical across
    /// thread counts, under both precisions.
    #[test]
    fn grid_arenas_bit_identical(data in arb_dataset(), cell in 0.5..10.0f64) {
        for precision in [Precision::F64, Precision::F32] {
            let seq = GridIndex::with_options(&data, Euclidean, cell, 1, precision);
            for threads in [2usize, 3, 8] {
                let par = GridIndex::with_options(&data, Euclidean, cell, threads, precision);
                prop_assert_eq!(seq.arena_bits(), par.arena_bits(),
                    "grid arenas differ at {} threads ({:?})", threads, precision);
            }
        }
    }
}
