//! Spatial access methods for the DBDC reproduction.
//!
//! DBSCAN's hot operation is the ε-range query ("all points within `eps` of
//! `q`"); the paper executes it through an R*-tree \[3\] for vector data and
//! an M-tree \[4\] for metric data. This crate provides both, plus a linear
//! scan (the correctness oracle), a uniform grid, and a kd-tree, all behind
//! the [`NeighborIndex`] trait so the clustering layer is index-agnostic.
//!
//! All vector indexes borrow the [`Dataset`] they are built over and return
//! point indices into it; they never copy coordinates. The metric-space
//! indexes ([`MTree`], [`VpTree`]) own their objects instead, since there
//! is no flat storage for arbitrary `T`.

pub mod grid;
pub mod kdtree;
pub mod latency;
pub mod linear;
pub mod mtree;
pub mod rstar;
pub mod vptree;

use dbdc_geom::{Dataset, Metric};

pub use dbdc_geom::Precision;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use latency::LatencyObserved;
pub use linear::LinearScan;
pub use mtree::MTree;
pub use rstar::RStarTree;
pub use vptree::VpTree;

/// Reusable per-query scratch for [`NeighborIndex::range_with`].
///
/// The flattened indexes traverse with an explicit stack instead of
/// recursion; callers that own a workspace and pass it to every query
/// let that stack keep its high-water capacity, so steady-state range
/// queries perform no allocations at all. A freshly `default()`ed
/// workspace is always valid — the first few queries just grow it.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Traversal stack of arena node ids.
    pub(crate) stack: Vec<u32>,
}

impl QueryWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Fallback scratch for [`NeighborIndex::range`] calls that don't
    /// thread a [`QueryWorkspace`]: one lazily-grown workspace per
    /// thread, so even workspace-less callers stay allocation-free in
    /// the steady state.
    static SCRATCH: std::cell::RefCell<QueryWorkspace> =
        std::cell::RefCell::new(QueryWorkspace::new());
}

/// Runs `f` with this thread's shared scratch [`QueryWorkspace`].
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut QueryWorkspace) -> R) -> R {
    SCRATCH.with(|ws| f(&mut ws.borrow_mut()))
}

/// A spatial index over a [`Dataset`] answering ε-range and k-nearest-
/// neighbour queries under some [`Metric`].
///
/// Implementations must return **exactly** the points `p` with
/// `dist(q, p) <= eps` (closed ball, matching the paper's
/// `N_Eps(q)` definition), in any order.
pub trait NeighborIndex: Send + Sync {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the indices of all points within distance `eps` of `q`
    /// (inclusive) to `out`. `out` is cleared first.
    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>);

    /// Like [`NeighborIndex::range`], but traverses with the caller's
    /// reusable [`QueryWorkspace`] so steady-state queries allocate
    /// nothing. Returns the same indices in the same order as `range`.
    ///
    /// The default delegates to `range` (correct for indexes without a
    /// traversal stack, e.g. the linear scan); the flattened tree
    /// indexes override it and implement `range` on top of it via
    /// thread-local scratch.
    fn range_with(&self, q: &[f64], eps: f64, out: &mut Vec<u32>, ws: &mut QueryWorkspace) {
        let _ = ws;
        self.range(q, eps, out);
    }

    /// Convenience wrapper around [`NeighborIndex::range`] returning a fresh
    /// vector.
    fn range_vec(&self, q: &[f64], eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.range(q, eps, &mut out);
        out
    }

    /// The `k` nearest neighbours of `q` as `(index, distance)` pairs sorted
    /// by ascending distance (ties broken arbitrarily). Returns fewer than
    /// `k` pairs if the index holds fewer points. The query point itself is
    /// *not* excluded — queries from indexed points include themselves.
    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)>;
}

/// Which index structure to build — used by benchmarks and the DBDC
/// configuration to select the neighborhood backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexKind {
    /// Brute-force linear scan, `O(n)` per query.
    Linear,
    /// Uniform grid with ε-sized cells; excellent for 2-d data.
    Grid,
    /// Balanced kd-tree built by median splits.
    KdTree,
    /// R*-tree (Beckmann et al. 1990) — the paper's index.
    #[default]
    RStar,
}

impl IndexKind {
    /// All available kinds, for sweeps.
    pub const ALL: [IndexKind; 4] = [
        IndexKind::Linear,
        IndexKind::Grid,
        IndexKind::KdTree,
        IndexKind::RStar,
    ];

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Linear => "linear",
            IndexKind::Grid => "grid",
            IndexKind::KdTree => "kdtree",
            IndexKind::RStar => "rstar",
        }
    }
}

impl std::str::FromStr for IndexKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(IndexKind::Linear),
            "grid" => Ok(IndexKind::Grid),
            "kdtree" => Ok(IndexKind::KdTree),
            "rstar" => Ok(IndexKind::RStar),
            other => Err(format!(
                "unknown index kind {other:?} (expected linear|grid|kdtree|rstar)"
            )),
        }
    }
}

/// Construction options for [`build_index_opts`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Worker threads for parallel arena construction (1 = sequential).
    /// Construction is **bit-identical** at every thread count — the
    /// subtree→node-id assignment is deterministic, so the flat arenas
    /// come out byte-for-byte the same regardless of parallelism.
    pub threads: usize,
    /// Coordinate precision of the leaf SoA scan blocks. The linear
    /// scan ignores this and stays the exact f64 oracle.
    pub precision: Precision,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            precision: Precision::F64,
        }
    }
}

/// Builds the chosen index over `data` with metric `m`.
///
/// `eps_hint` sizes the grid cells for [`IndexKind::Grid`]; it should be the
/// ε the index will mostly be queried with (DBSCAN's `Eps`). The other index
/// kinds ignore it.
///
/// ```
/// use dbdc_geom::{Dataset, Euclidean};
/// use dbdc_index::{build_index, IndexKind};
///
/// let data = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 10.0, 10.0]);
/// let index = build_index(IndexKind::RStar, &data, Euclidean, 1.5);
/// let mut hits = index.range_vec(&[0.5, 0.0], 1.0);
/// hits.sort();
/// assert_eq!(hits, vec![0, 1]);
/// assert_eq!(index.knn(&[9.0, 9.0], 1)[0].0, 2);
/// ```
pub fn build_index<'a, M: Metric + Clone + 'a>(
    kind: IndexKind,
    data: &'a Dataset,
    m: M,
    eps_hint: f64,
) -> Box<dyn NeighborIndex + 'a> {
    match kind {
        IndexKind::Linear => Box::new(LinearScan::new(data, m)),
        IndexKind::Grid => Box::new(GridIndex::new(data, m, eps_hint)),
        IndexKind::KdTree => Box::new(KdTree::new(data, m)),
        IndexKind::RStar => Box::new(RStarTree::bulk_load(data, m)),
    }
}

/// Like [`build_index`], but optionally attaches a
/// [`dbdc_obs::CounterSheet`] so every query records its ε-range /
/// knn count, distance evaluations, and index-node visits. With
/// `sheet: None` this is exactly [`build_index`] — the uninstrumented
/// hot path performs no atomic operations.
pub fn build_index_observed<'a, M: Metric + Clone + 'a>(
    kind: IndexKind,
    data: &'a Dataset,
    m: M,
    eps_hint: f64,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
) -> Box<dyn NeighborIndex + 'a> {
    let Some(sheet) = sheet else {
        return build_index(kind, data, m, eps_hint);
    };
    match kind {
        IndexKind::Linear => Box::new(LinearScan::new(data, m).observed(sheet.clone())),
        IndexKind::Grid => Box::new(GridIndex::new(data, m, eps_hint).observed(sheet.clone())),
        IndexKind::KdTree => Box::new(KdTree::new(data, m).observed(sheet.clone())),
        IndexKind::RStar => Box::new(RStarTree::bulk_load(data, m).observed(sheet.clone())),
    }
}

/// Like [`build_index_observed`], but additionally wraps the index in a
/// [`LatencyObserved`] layer when `hist` is given, so every query's
/// wall time lands in the histogram. Both observation layers are
/// independent: `(None, None)` is exactly [`build_index`].
pub fn build_index_instrumented<'a, M: Metric + Clone + 'a>(
    kind: IndexKind,
    data: &'a Dataset,
    m: M,
    eps_hint: f64,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
    hist: Option<&std::sync::Arc<dbdc_obs::HistSheet>>,
) -> Box<dyn NeighborIndex + 'a> {
    let index = build_index_observed(kind, data, m, eps_hint, sheet);
    match hist {
        Some(hist) => Box::new(LatencyObserved::new(index, hist.clone())),
        None => index,
    }
}

/// Like [`build_index_instrumented`], but with explicit
/// [`BuildOptions`]: worker threads for parallel arena construction
/// and the scan-path coordinate precision. With the default options
/// this is exactly [`build_index_instrumented`].
pub fn build_index_opts<'a, M: Metric + Clone + 'a>(
    kind: IndexKind,
    data: &'a Dataset,
    m: M,
    eps_hint: f64,
    opts: BuildOptions,
    sheet: Option<&std::sync::Arc<dbdc_obs::CounterSheet>>,
    hist: Option<&std::sync::Arc<dbdc_obs::HistSheet>>,
) -> Box<dyn NeighborIndex + 'a> {
    let index: Box<dyn NeighborIndex + 'a> = match kind {
        IndexKind::Linear => {
            // The linear scan has no arenas to build and stays the
            // exact f64 oracle regardless of the requested options.
            let idx = LinearScan::new(data, m);
            match sheet {
                Some(s) => Box::new(idx.observed(s.clone())),
                None => Box::new(idx),
            }
        }
        IndexKind::Grid => {
            let idx = GridIndex::with_options(data, m, eps_hint, opts.threads, opts.precision);
            match sheet {
                Some(s) => Box::new(idx.observed(s.clone())),
                None => Box::new(idx),
            }
        }
        IndexKind::KdTree => {
            let idx = KdTree::with_options(data, m, opts.threads, opts.precision);
            match sheet {
                Some(s) => Box::new(idx.observed(s.clone())),
                None => Box::new(idx),
            }
        }
        IndexKind::RStar => {
            let idx = RStarTree::bulk_load_opts(data, m, opts.threads, opts.precision);
            match sheet {
                Some(s) => Box::new(idx.observed(s.clone())),
                None => Box::new(idx),
            }
        }
    };
    match hist {
        Some(hist) => Box::new(LatencyObserved::new(index, hist.clone())),
        None => index,
    }
}

/// Lower bound on the distance from `q` to any point inside the axis-aligned
/// box `[lo, hi]`, under metric `m`.
///
/// Works for every translation-invariant metric that is monotone in the
/// per-coordinate absolute differences (all Lp metrics qualify): the closest
/// point of the box to `q` is the per-coordinate clamp of `q`, so the
/// distance is the metric norm of the per-coordinate gap vector.
pub fn dist_to_box<M: Metric>(m: &M, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    // Stack buffers up to 16 dimensions so the knn hot loops stay
    // allocation-free; the surrogate-space range path bypasses this
    // entirely via `Metric::surrogate_dist_to_box`.
    const STACK_DIM: usize = 16;
    let dim = q.len();
    let mut stack = [0.0f64; 2 * STACK_DIM];
    let mut heap;
    let buf: &mut [f64] = if dim <= STACK_DIM {
        &mut stack
    } else {
        heap = vec![0.0; 2 * dim];
        &mut heap
    };
    let (gaps, zeros) = buf.split_at_mut(buf.len() / 2);
    for i in 0..dim {
        gaps[i] = if q[i] < lo[i] {
            lo[i] - q[i]
        } else if q[i] > hi[i] {
            q[i] - hi[i]
        } else {
            0.0
        };
    }
    m.dist(&gaps[..dim], &zeros[..dim])
}

/// Scans one traversal-ordered SoA block with the batched surrogate
/// kernel, appending every id whose surrogate distance is within
/// `bound` to `out` — in block (traversal) order, which the callers'
/// visit-order guarantees depend on.
///
/// `ids[i]`'s coordinates live column-major at `cols[d * stride + i]`.
/// Work proceeds in fixed chunks through a stack buffer, so the scan
/// allocates nothing regardless of block length.
pub(crate) fn scan_block<M: Metric>(
    m: &M,
    q: &[f64],
    ids: &[u32],
    cols: &[f64],
    stride: usize,
    bound: f64,
    out: &mut Vec<u32>,
) {
    const SCAN_CHUNK: usize = 32;
    let mut buf = [0.0f64; SCAN_CHUNK];
    let n = ids.len();
    let mut i = 0;
    while i < n {
        let c = SCAN_CHUNK.min(n - i);
        // Slicing at `i` keeps the same stride valid: within the chunk
        // the kernel reads `cols[i + d * stride + k]` with
        // `i + k < n <= stride`, which stays inside each column.
        m.surrogate_batch(q, &cols[i..], stride, c, &mut buf[..c]);
        for (k, &id) in ids[i..i + c].iter().enumerate() {
            if buf[k] <= bound {
                out.push(id);
            }
        }
        i += c;
    }
}

/// `f32` twin of [`scan_block`] for the opt-in reduced-precision scan
/// path: same chunking and visit order, surrogates computed by
/// [`Metric::surrogate_batch_f32`] over an `f32` SoA block against an
/// `f32` bound.
pub(crate) fn scan_block_f32<M: Metric>(
    m: &M,
    q: &[f32],
    ids: &[u32],
    cols: &[f32],
    stride: usize,
    bound: f32,
    out: &mut Vec<u32>,
) {
    const SCAN_CHUNK: usize = 32;
    let mut buf = [0.0f32; SCAN_CHUNK];
    let n = ids.len();
    let mut i = 0;
    while i < n {
        let c = SCAN_CHUNK.min(n - i);
        m.surrogate_batch_f32(q, &cols[i..], stride, c, &mut buf[..c]);
        for (k, &id) in ids[i..i + c].iter().enumerate() {
            if buf[k] <= bound {
                out.push(id);
            }
        }
        i += c;
    }
}

/// Per-query `f32` view of an `f64` query point, stack-buffered up to
/// 16 dimensions so the reduced-precision scan path allocates nothing
/// per query in the dimensions this workspace actually uses.
pub(crate) struct QueryF32 {
    stack: [f32; 16],
    heap: Vec<f32>,
    dim: usize,
}

impl QueryF32 {
    pub(crate) fn new(q: &[f64]) -> Self {
        let mut s = Self {
            stack: [0.0; 16],
            heap: Vec::new(),
            dim: q.len(),
        };
        if q.len() <= 16 {
            for (w, &v) in s.stack.iter_mut().zip(q) {
                *w = v as f32;
            }
        } else {
            s.heap = q.iter().map(|&v| v as f32).collect();
        }
        s
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[f32] {
        if self.dim <= 16 {
            &self.stack[..self.dim]
        } else {
            &self.heap
        }
    }
}

#[cfg(test)]
mod observed_tests {
    use super::*;
    use dbdc_geom::Euclidean;
    use dbdc_obs::CounterSheet;
    use std::sync::Arc;

    #[test]
    fn every_backend_counts_queries_and_work() {
        let data = testutil::random_dataset(200, 99);
        for kind in IndexKind::ALL {
            let sheet = Arc::new(CounterSheet::new());
            let idx = build_index_observed(kind, &data, Euclidean, 5.0, Some(&sheet));
            let mut out = Vec::new();
            for i in (0..data.len()).step_by(10) {
                idx.range(data.point(i as u32), 5.0, &mut out);
            }
            idx.knn(&[0.0, 0.0], 3);
            let c = sheet.snapshot();
            assert_eq!(c.range_queries, 20, "{kind:?}");
            assert_eq!(c.knn_queries, 1, "{kind:?}");
            assert!(c.distance_evals > 0, "{kind:?}");
            match kind {
                // A linear scan touches no index nodes but evaluates
                // every point on every query.
                IndexKind::Linear => {
                    assert_eq!(c.node_visits, 0);
                    assert_eq!(c.distance_evals, 21 * data.len() as u64);
                }
                _ => assert!(c.node_visits > 0, "{kind:?} should visit nodes"),
            }
        }
    }

    #[test]
    fn unobserved_build_records_nothing_and_answers_identically() {
        let data = testutil::random_dataset(150, 7);
        for kind in IndexKind::ALL {
            let plain = build_index_observed(kind, &data, Euclidean, 3.0, None);
            let sheet = Arc::new(CounterSheet::new());
            let observed = build_index_observed(kind, &data, Euclidean, 3.0, Some(&sheet));
            let q = data.point(3);
            let mut a = plain.range_vec(q, 3.0);
            let mut b = observed.range_vec(q, 3.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(sheet.snapshot().range_queries, 1);
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use dbdc_geom::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deterministic random 2-d dataset for cross-checking indexes.
    pub fn random_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_capacity(2, n);
        for _ in 0..n {
            let p = [rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)];
            d.push(&p);
        }
        d
    }

    /// Asserts `idx` agrees with a linear scan on a batch of range and knn
    /// queries over `data`.
    pub fn check_against_linear<M: Metric + Clone>(idx: &dyn NeighborIndex, data: &Dataset, m: M) {
        let oracle = LinearScan::new(data, m);
        assert_eq!(idx.len(), data.len());
        let mut got = Vec::new();
        let mut want = Vec::new();
        let step = 7.max(data.len() / 13);
        let queries: Vec<Vec<f64>> = data
            .iter()
            .step_by(step)
            .map(|p| p.to_vec())
            .chain([vec![0.0, 0.0], vec![100.0, 100.0], vec![-3.3, 7.7]])
            .collect();
        for q in &queries {
            for eps in [0.1, 1.0, 5.0, 25.0] {
                idx.range(q, eps, &mut got);
                oracle.range(q, eps, &mut want);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "range mismatch at q={q:?} eps={eps}");
            }
            for k in [1usize, 3, 10] {
                let got = idx.knn(q, k);
                let want = oracle.knn(q, k);
                assert_eq!(got.len(), want.len(), "knn count mismatch");
                for (g, w) in got.iter().zip(want.iter()) {
                    // Distances must agree; indices may differ on exact ties.
                    assert!(
                        (g.1 - w.1).abs() < 1e-9,
                        "knn distance mismatch at q={q:?} k={k}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }
}
