//! Per-query latency capture for any [`NeighborIndex`].
//!
//! [`LatencyObserved`] wraps a built index and times every `range` /
//! `knn` call into a shared [`HistSheet`], so reports carry the full
//! per-query latency *distribution* per backend — the paper's speedup
//! claim lives in the tail, not the mean. The wrapper composes with the
//! counter-observed backends: counters and latency are independent
//! layers, and a run that asks for neither goes through the raw index
//! with zero instrumentation cost.
//!
//! One histogram sheet serves both query kinds — DBSCAN issues ε-range
//! queries almost exclusively, and scope names (`…/eps_range_ns`) say
//! what was measured.

use std::sync::Arc;
use std::time::Instant;

use dbdc_obs::HistSheet;

use crate::{NeighborIndex, QueryWorkspace};

/// A [`NeighborIndex`] that records each query's wall time in
/// nanoseconds into a [`HistSheet`].
pub struct LatencyObserved<'a> {
    inner: Box<dyn NeighborIndex + 'a>,
    hist: Arc<HistSheet>,
}

impl<'a> LatencyObserved<'a> {
    /// Wraps `inner`, recording every query into `hist`.
    pub fn new(inner: Box<dyn NeighborIndex + 'a>, hist: Arc<HistSheet>) -> LatencyObserved<'a> {
        LatencyObserved { inner, hist }
    }
}

impl NeighborIndex for LatencyObserved<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        let t0 = Instant::now();
        self.inner.range(q, eps, out);
        self.hist.record_duration(t0.elapsed());
    }

    fn range_with(&self, q: &[f64], eps: f64, out: &mut Vec<u32>, ws: &mut QueryWorkspace) {
        let t0 = Instant::now();
        self.inner.range_with(q, eps, out, ws);
        self.hist.record_duration(t0.elapsed());
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        let t0 = Instant::now();
        let result = self.inner.knn(q, k);
        self.hist.record_duration(t0.elapsed());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_index, IndexKind};
    use dbdc_geom::Euclidean;

    #[test]
    fn wrapper_times_queries_and_preserves_answers() {
        let data = crate::testutil::random_dataset(120, 11);
        for kind in IndexKind::ALL {
            let plain = build_index(kind, &data, Euclidean, 4.0);
            let hist = Arc::new(HistSheet::new());
            let timed =
                LatencyObserved::new(build_index(kind, &data, Euclidean, 4.0), Arc::clone(&hist));
            assert_eq!(timed.len(), data.len());
            let q = data.point(5);
            let mut a = plain.range_vec(q, 4.0);
            let mut b = timed.range_vec(q, 4.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
            let knn = timed.knn(q, 3);
            assert_eq!(knn.len(), 3);
            let h = hist.snapshot();
            assert_eq!(h.count(), 2, "{kind:?}: one range + one knn");
        }
    }
}
