//! Brute-force linear scan.
//!
//! `O(n)` per query with no build cost. It is the correctness oracle every
//! other index is tested against, the baseline in the index ablation
//! benchmark, and the sensible choice for the tiny representative sets the
//! DBDC server clusters.

use crate::NeighborIndex;
use dbdc_geom::{Dataset, Metric};
use dbdc_obs::CounterSheet;
use std::sync::Arc;

/// A linear-scan "index" over a dataset.
#[derive(Debug, Clone)]
pub struct LinearScan<'a, M> {
    data: &'a Dataset,
    metric: M,
    sheet: Option<Arc<CounterSheet>>,
}

impl<'a, M: Metric> LinearScan<'a, M> {
    /// Wraps `data` for linear-scan queries under metric `m`.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        Self {
            data,
            metric,
            sheet: None,
        }
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }
}

impl<M: Metric> NeighborIndex for LinearScan<'_, M> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        out.clear();
        // Compare in surrogate space (squared distance for Euclidean) to
        // skip the sqrt in the hot loop.
        let bound = self.metric.to_surrogate(eps);
        for (i, p) in self.data.iter().enumerate() {
            if self.metric.surrogate(q, p) <= bound {
                out.push(i as u32);
            }
        }
        if let Some(s) = &self.sheet {
            // One surrogate evaluation per point, no index nodes.
            s.record_range(self.data.len() as u64, 0);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of the k best (surrogate distance, index) seen so far.
        let mut heap: std::collections::BinaryHeap<(ordered::F64, u32)> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (i, p) in self.data.iter().enumerate() {
            let d = self.metric.surrogate(q, p);
            if heap.len() < k {
                heap.push((ordered::F64(d), i as u32));
            } else if let Some(&(worst, _)) = heap.peek() {
                if d < worst.0 {
                    heap.pop();
                    heap.push((ordered::F64(d), i as u32));
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap
            .into_iter()
            .map(|(_, i)| (i, self.metric.dist(q, self.data.point(i))))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(s) = &self.sheet {
            s.record_knn(self.data.len() as u64, 0);
        }
        out
    }
}

/// Minimal totally-ordered f64 wrapper for use in heaps.
///
/// All distances in this crate are finite (datasets reject non-finite
/// coordinates), so `total_cmp` agrees with the usual order.
pub(crate) mod ordered {
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct F64(pub f64);

    impl Eq for F64 {}

    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::Euclidean;

    fn dataset() -> Dataset {
        Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 3.0, 4.0, 10.0, 10.0, 0.5, 0.5])
    }

    #[test]
    fn range_closed_ball() {
        let d = dataset();
        let idx = LinearScan::new(&d, Euclidean);
        let mut out = Vec::new();
        idx.range(&[0.0, 0.0], 1.0, &mut out);
        out.sort_unstable();
        // (1,0) is at distance exactly 1.0 and must be included.
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn range_empty_result() {
        let d = dataset();
        let idx = LinearScan::new(&d, Euclidean);
        assert!(idx.range_vec(&[-100.0, -100.0], 1.0).is_empty());
    }

    #[test]
    fn knn_sorted_by_distance() {
        let d = dataset();
        let idx = LinearScan::new(&d, Euclidean);
        let nn = idx.knn(&[0.0, 0.0], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[0].1, 0.0);
        assert_eq!(nn[1].0, 4); // (0.5, 0.5) at ~0.707
        assert_eq!(nn[2].0, 1); // (1, 0) at 1.0
        assert!(nn[1].1 <= nn[2].1);
    }

    #[test]
    fn knn_k_larger_than_n() {
        let d = dataset();
        let idx = LinearScan::new(&d, Euclidean);
        assert_eq!(idx.knn(&[0.0, 0.0], 100).len(), d.len());
    }

    #[test]
    fn knn_zero_k() {
        let d = dataset();
        let idx = LinearScan::new(&d, Euclidean);
        assert!(idx.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let idx = LinearScan::new(&d, Euclidean);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 10.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 3).is_empty());
    }
}
