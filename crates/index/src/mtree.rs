//! M-tree (Ciaccia, Patella, Zezula — VLDB 1997).
//!
//! The paper cites the M-tree (reference \[4\]) as the access method that
//! lets DBSCAN run on general metric data, not just vector spaces. This
//! implementation is generic over the object type `T` and a
//! [`MetricSpace`]`<T>`: it supports dynamic insertion with node splits
//! (max-distance promotion, generalized-hyperplane partition) and
//! ε-range queries pruned by the triangle inequality, including the
//! distance-to-parent shortcut that skips distance computations.
//!
//! Unlike the vector indexes, the M-tree owns its objects (there is no flat
//! `Dataset` for arbitrary `T`); queries return the insertion ids.

use dbdc_geom::metric::MetricSpace;

const NODE_CAPACITY: usize = 16;

struct Entry {
    /// Object id (index into `MTree::objects`) acting as the entry's pivot.
    obj: u32,
    /// Covering radius of the subtree (0 for leaf entries).
    radius: f64,
    /// Distance from this entry's pivot to the parent routing pivot
    /// (`f64::NAN` for entries in the root, which has no parent pivot).
    dist_to_parent: f64,
    /// `None` for leaf entries.
    child: Option<Box<MNode>>,
}

struct MNode {
    is_leaf: bool,
    entries: Vec<Entry>,
}

/// A dynamic M-tree over owned objects of type `T`.
pub struct MTree<T, S> {
    space: S,
    objects: Vec<T>,
    root: Option<Box<MNode>>,
}

impl<T, S: MetricSpace<T>> MTree<T, S> {
    /// Creates an empty tree.
    pub fn new(space: S) -> Self {
        Self {
            space,
            objects: Vec::new(),
            root: None,
        }
    }

    /// Builds a tree from a collection of objects.
    pub fn from_objects(space: S, objects: impl IntoIterator<Item = T>) -> Self {
        let mut tree = Self::new(space);
        for o in objects {
            tree.insert(o);
        }
        tree
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object with insertion id `id`.
    pub fn object(&self, id: u32) -> &T {
        &self.objects[id as usize]
    }

    fn d(&self, a: u32, b: u32) -> f64 {
        self.space
            .dist(&self.objects[a as usize], &self.objects[b as usize])
    }

    /// Inserts an object and returns its id.
    pub fn insert(&mut self, obj: T) -> u32 {
        let id = self.objects.len() as u32;
        self.objects.push(obj);
        match self.root.take() {
            None => {
                self.root = Some(Box::new(MNode {
                    is_leaf: true,
                    entries: vec![Entry {
                        obj: id,
                        radius: 0.0,
                        dist_to_parent: f64::NAN,
                        child: None,
                    }],
                }));
            }
            Some(mut root) => {
                if let Some((e1, e2)) = self.insert_rec(&mut root, id, None) {
                    // Root split: new root with the two promoted entries.
                    self.root = Some(Box::new(MNode {
                        is_leaf: false,
                        entries: vec![e1, e2],
                    }));
                } else {
                    self.root = Some(root);
                }
                if self.root.is_none() {
                    unreachable!("root restored above");
                }
            }
        }
        id
    }

    /// Recursive insert. `parent` is the pivot id of the routing entry that
    /// points at `node` (None for the root). Returns `Some((e1, e2))` if the
    /// node split, in which case the caller must replace its routing entry.
    fn insert_rec(&self, node: &mut MNode, id: u32, parent: Option<u32>) -> Option<(Entry, Entry)> {
        if node.is_leaf {
            let dist_to_parent = parent.map(|p| self.d(p, id)).unwrap_or(f64::NAN);
            node.entries.push(Entry {
                obj: id,
                radius: 0.0,
                dist_to_parent,
                child: None,
            });
        } else {
            // Choose the routing entry: prefer one whose ball already covers
            // the object (minimum distance); otherwise minimum radius
            // enlargement.
            let mut best: Option<(usize, f64, bool)> = None; // (idx, key, covered)
            for (i, e) in node.entries.iter().enumerate() {
                let dist = self.d(e.obj, id);
                let covered = dist <= e.radius;
                let key = if covered { dist } else { dist - e.radius };
                let better = match &best {
                    None => true,
                    Some((_, bk, bc)) => match (covered, bc) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => key < *bk,
                    },
                };
                if better {
                    best = Some((i, key, covered));
                }
            }
            let (idx, _, covered) = best.expect("inner nodes are non-empty");
            let pivot = node.entries[idx].obj;
            if !covered {
                let dist = self.d(pivot, id);
                node.entries[idx].radius = node.entries[idx].radius.max(dist);
            }
            let child = node.entries[idx]
                .child
                .as_mut()
                .expect("routing entries have children");
            if let Some((e1, e2)) = self.insert_rec(child, id, Some(pivot)) {
                // Replace entry idx with the two promoted entries; fix their
                // dist_to_parent relative to this node's parent.
                node.entries.swap_remove(idx);
                let mut push = |mut e: Entry| {
                    e.dist_to_parent = parent.map(|p| self.d(p, e.obj)).unwrap_or(f64::NAN);
                    node.entries.push(e);
                };
                push(e1);
                push(e2);
            }
        }
        if node.entries.len() > NODE_CAPACITY {
            Some(self.split(node))
        } else {
            None
        }
    }

    /// Splits an overflowing node: promotes the two entries at maximum
    /// pairwise pivot distance (exact over the ≤ CAPACITY+1 entries) and
    /// partitions the rest to the nearer promoted pivot.
    fn split(&self, node: &mut MNode) -> (Entry, Entry) {
        let n = node.entries.len();
        let (mut pa, mut pb, mut best) = (0usize, 1usize, -1.0f64);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.d(node.entries[i].obj, node.entries[j].obj);
                if d > best {
                    best = d;
                    pa = i;
                    pb = j;
                }
            }
        }
        let pivot_a = node.entries[pa].obj;
        let pivot_b = node.entries[pb].obj;
        let is_leaf = node.is_leaf;
        let mut group_a = Vec::new();
        let mut group_b = Vec::new();
        let mut radius_a = 0.0f64;
        let mut radius_b = 0.0f64;
        for mut e in node.entries.drain(..) {
            let da = self.d(pivot_a, e.obj);
            let db = self.d(pivot_b, e.obj);
            if da <= db {
                e.dist_to_parent = da;
                radius_a = radius_a.max(da + e.radius);
                group_a.push(e);
            } else {
                e.dist_to_parent = db;
                radius_b = radius_b.max(db + e.radius);
                group_b.push(e);
            }
        }
        let make = |pivot: u32, radius: f64, entries: Vec<Entry>| Entry {
            obj: pivot,
            radius,
            dist_to_parent: f64::NAN, // set by the caller
            child: Some(Box::new(MNode { is_leaf, entries })),
        };
        (
            make(pivot_a, radius_a, group_a),
            make(pivot_b, radius_b, group_b),
        )
    }

    /// All object ids within distance `eps` (inclusive) of `query`.
    ///
    /// The query object does not have to be stored in the tree.
    pub fn range(&self, query: &T, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.range_rec(root, query, eps, None, &mut out);
        }
        out
    }

    /// `dist_q_parent` is `dist(query, parent pivot)` for the node's parent
    /// routing pivot, used for the triangle-inequality shortcut.
    fn range_rec(
        &self,
        node: &MNode,
        query: &T,
        eps: f64,
        dist_q_parent: Option<f64>,
        out: &mut Vec<u32>,
    ) {
        for e in &node.entries {
            // Shortcut: |d(q, parent) - d(e, parent)| > eps + radius implies
            // d(q, e) > eps + radius, so the entry cannot qualify.
            if let Some(dqp) = dist_q_parent {
                if !e.dist_to_parent.is_nan() && (dqp - e.dist_to_parent).abs() > eps + e.radius {
                    continue;
                }
            }
            let d = self.space.dist(query, &self.objects[e.obj as usize]);
            match &e.child {
                None => {
                    if d <= eps {
                        out.push(e.obj);
                    }
                }
                Some(child) => {
                    if d <= eps + e.radius {
                        self.range_rec(child, query, eps, Some(d), out);
                    }
                }
            }
        }
    }

    /// The `k` nearest stored objects to `query`, as `(id, distance)` pairs
    /// sorted by ascending distance. Best-first search pruned with the
    /// covering radii: a subtree with pivot `p` and radius `r` cannot hold
    /// anything closer than `max(0, d(q, p) - r)`.
    pub fn knn(&self, query: &T, k: usize) -> Vec<(u32, f64)> {
        use crate::linear::ordered::F64;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        enum Item<'n> {
            Node(&'n MNode),
            Object(u32, f64),
        }
        struct Entry2<'n> {
            key: Reverse<(F64, usize)>,
            item: Item<'n>,
        }
        impl PartialEq for Entry2<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl Eq for Entry2<'_> {}
        impl PartialOrd for Entry2<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry2<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.key.cmp(&other.key)
            }
        }
        let mut tiebreak = 0usize;
        let mut frontier: BinaryHeap<Entry2> = BinaryHeap::new();
        frontier.push(Entry2 {
            key: Reverse((F64(0.0), tiebreak)),
            item: Item::Node(self.root.as_ref().expect("checked above")),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(Entry2 {
            key: Reverse((F64(_bound), _)),
            item,
        }) = frontier.pop()
        {
            if out.len() == k {
                break;
            }
            match item {
                Item::Object(id, d) => out.push((id, d)),
                Item::Node(node) => {
                    for e in &node.entries {
                        let d = self.space.dist(query, &self.objects[e.obj as usize]);
                        tiebreak += 1;
                        match &e.child {
                            None => frontier.push(Entry2 {
                                key: Reverse((F64(d), tiebreak)),
                                item: Item::Object(e.obj, d),
                            }),
                            Some(child) => {
                                let bound = (d - e.radius).max(0.0);
                                frontier.push(Entry2 {
                                    key: Reverse((F64(bound), tiebreak)),
                                    item: Item::Node(child),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Validates the covering-radius invariant; test/diagnostic helper.
    /// Returns the number of stored leaf entries.
    pub fn validate(&self) -> usize {
        fn walk<T, S: MetricSpace<T>>(
            tree: &MTree<T, S>,
            node: &MNode,
            pivot: Option<(u32, f64)>,
        ) -> usize {
            let mut count = 0;
            for e in &node.entries {
                if let Some((p, radius)) = pivot {
                    let d = tree.d(p, e.obj);
                    assert!(
                        d <= radius + 1e-9,
                        "entry pivot escapes parent covering radius: {d} > {radius}"
                    );
                    assert!((d - e.dist_to_parent).abs() < 1e-9, "stale dist_to_parent");
                }
                match &e.child {
                    None => {
                        assert!(node.is_leaf, "leaf entry in inner node");
                        count += 1;
                    }
                    Some(child) => {
                        assert!(!node.is_leaf, "routing entry in leaf");
                        count += walk(tree, child, Some((e.obj, e.radius)));
                    }
                }
            }
            count
        }
        match &self.root {
            None => 0,
            Some(root) => walk(self, root, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::metric::{EditDistance, VectorSpace};
    use dbdc_geom::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)])
            .collect()
    }

    fn brute_range(objs: &[Vec<f64>], q: &Vec<f64>, eps: f64) -> Vec<u32> {
        let vs = VectorSpace(Euclidean);
        objs.iter()
            .enumerate()
            .filter(|(_, o)| MetricSpace::<Vec<f64>>::dist(&vs, q, o) <= eps)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let objs = random_vectors(500, 31);
        let tree = MTree::from_objects(VectorSpace(Euclidean), objs.clone());
        assert_eq!(tree.validate(), 500);
        for (qi, q) in objs.iter().enumerate().step_by(37) {
            for eps in [0.5, 3.0, 12.0, 40.0] {
                let mut got = tree.range(q, eps);
                got.sort_unstable();
                let want = brute_range(&objs, q, eps);
                assert_eq!(got, want, "mismatch at query {qi} eps {eps}");
            }
        }
    }

    #[test]
    fn range_with_external_query_object() {
        let objs = random_vectors(200, 32);
        let tree = MTree::from_objects(VectorSpace(Euclidean), objs.clone());
        let q = vec![3.21, -7.65];
        let mut got = tree.range(&q, 20.0);
        got.sort_unstable();
        assert_eq!(got, brute_range(&objs, &q, 20.0));
    }

    #[test]
    fn works_on_strings() {
        let words = [
            "cluster",
            "clusters",
            "clustering",
            "blister",
            "luster",
            "cloister",
            "monster",
            "minster",
            "mister",
            "master",
            "faster",
            "raster",
        ];
        let tree = MTree::from_objects(EditDistance, words.iter().map(|s| s.to_string()));
        assert_eq!(tree.validate(), words.len());
        let hits = tree.range(&"cluster".to_string(), 1.0);
        let found: Vec<&str> = hits.iter().map(|&i| tree.object(i).as_str()).collect();
        assert!(found.contains(&"cluster"));
        assert!(found.contains(&"clusters"));
        assert!(found.contains(&"luster"));
        assert!(!found.contains(&"master"));
    }

    #[test]
    fn empty_and_singleton() {
        let mut tree: MTree<Vec<f64>, _> = MTree::new(VectorSpace(Euclidean));
        assert!(tree.is_empty());
        assert!(tree.range(&vec![0.0, 0.0], 100.0).is_empty());
        let id = tree.insert(vec![1.0, 1.0]);
        assert_eq!(id, 0);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.range(&vec![0.0, 0.0], 2.0), vec![0]);
        assert!(tree.range(&vec![0.0, 0.0], 1.0).is_empty());
    }

    #[test]
    fn many_duplicates() {
        let objs: Vec<Vec<f64>> = (0..100).map(|_| vec![2.0, 2.0]).collect();
        let tree = MTree::from_objects(VectorSpace(Euclidean), objs);
        assert_eq!(tree.validate(), 100);
        assert_eq!(tree.range(&vec![2.0, 2.0], 0.0).len(), 100);
    }

    #[test]
    fn incremental_inserts_stay_valid() {
        let objs = random_vectors(300, 33);
        let mut tree = MTree::new(VectorSpace(Euclidean));
        for (i, o) in objs.iter().enumerate() {
            tree.insert(o.clone());
            if i % 50 == 49 {
                assert_eq!(tree.validate(), i + 1);
            }
        }
        let q = vec![0.0, 0.0];
        let mut got = tree.range(&q, 25.0);
        got.sort_unstable();
        assert_eq!(got, brute_range(&objs, &q, 25.0));
    }
}

#[cfg(test)]
mod knn_tests {
    use super::*;
    use dbdc_geom::metric::{EditDistance, VectorSpace};
    use dbdc_geom::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)])
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let objs = random_vectors(400, 51);
        let tree = MTree::from_objects(VectorSpace(Euclidean), objs.clone());
        let vs = VectorSpace(Euclidean);
        for q in objs.iter().step_by(41) {
            for k in [1usize, 5, 20] {
                let got = tree.knn(q, k);
                assert_eq!(got.len(), k);
                // Sorted ascending.
                for w in got.windows(2) {
                    assert!(w[0].1 <= w[1].1 + 1e-12);
                }
                // Distances match brute-force k smallest.
                let mut want: Vec<f64> = objs
                    .iter()
                    .map(|o| MetricSpace::<Vec<f64>>::dist(&vs, q, o))
                    .collect();
                want.sort_by(f64::total_cmp);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.1 - w).abs() < 1e-9, "knn distance mismatch");
                }
            }
        }
    }

    #[test]
    fn knn_on_strings() {
        let words = [
            "cluster",
            "bluster",
            "blister",
            "blaster",
            "plaster",
            "xylophone",
        ];
        let tree = MTree::from_objects(EditDistance, words.iter().map(|s| s.to_string()));
        let got = tree.knn(&"cluster".to_string(), 3);
        assert_eq!(got[0].1, 0.0); // itself
        assert_eq!(tree.object(got[0].0), "cluster");
        assert_eq!(got[1].1, 1.0); // bluster
        assert!(got[2].1 <= 2.0);
    }

    #[test]
    fn knn_k_bounds() {
        let objs = random_vectors(5, 52);
        let tree = MTree::from_objects(VectorSpace(Euclidean), objs);
        assert!(tree.knn(&vec![0.0, 0.0], 0).is_empty());
        assert_eq!(tree.knn(&vec![0.0, 0.0], 50).len(), 5);
        let empty: MTree<Vec<f64>, _> = MTree::new(VectorSpace(Euclidean));
        assert!(empty.knn(&vec![0.0, 0.0], 3).is_empty());
    }
}
