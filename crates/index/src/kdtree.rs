//! Balanced kd-tree.
//!
//! Built once by recursive median splits (no insertion support — the
//! clustering pipeline builds the index per run), with leaves holding small
//! point buckets. Range queries prune subtrees by the distance from the
//! query to the subtree's bounding box, which is metric-correct via
//! [`crate::dist_to_box`].

use crate::linear::ordered::F64;
use crate::{dist_to_box, NeighborIndex};
use dbdc_geom::{Dataset, Metric, Rect};
use dbdc_obs::CounterSheet;
use std::collections::BinaryHeap;
use std::sync::Arc;

const LEAF_SIZE: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into the dataset.
        points: Vec<u32>,
    },
    Inner {
        bbox_left: Rect,
        bbox_right: Rect,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A static, balanced kd-tree over a dataset.
#[derive(Debug)]
pub struct KdTree<'a, M> {
    data: &'a Dataset,
    metric: M,
    root: Option<Node>,
    bbox: Option<Rect>,
    sheet: Option<Arc<CounterSheet>>,
}

impl<'a, M: Metric> KdTree<'a, M> {
    /// Builds the tree by recursive median splits along the widest
    /// dimension. `O(n log² n)` build via per-level sorts.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        let bbox = data.bounding_rect();
        let root = bbox
            .as_ref()
            .map(|b| Self::build(data, &mut ids, b.clone()));
        Self {
            data,
            metric,
            root,
            bbox,
            sheet: None,
        }
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }

    fn build(data: &Dataset, ids: &mut [u32], bbox: Rect) -> Node {
        if ids.len() <= LEAF_SIZE {
            return Node::Leaf {
                points: ids.to_vec(),
            };
        }
        // Split along the widest dimension of the actual bounding box.
        let dim = (0..data.dim())
            .max_by(|&a, &b| {
                let wa = bbox.hi()[a] - bbox.lo()[a];
                let wb = bbox.hi()[b] - bbox.lo()[b];
                wa.total_cmp(&wb)
            })
            .expect("dataset has at least 1 dimension");
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            data.point(a)[dim].total_cmp(&data.point(b)[dim])
        });
        let (l, r) = ids.split_at_mut(mid);
        let bbox_left =
            Rect::bounding(l.iter().map(|&i| data.point(i))).expect("left split is non-empty");
        let bbox_right =
            Rect::bounding(r.iter().map(|&i| data.point(i))).expect("right split is non-empty");
        Node::Inner {
            left: Box::new(Self::build(data, l, bbox_left.clone())),
            right: Box::new(Self::build(data, r, bbox_right.clone())),
            bbox_left,
            bbox_right,
        }
    }

    fn range_rec(
        &self,
        node: &Node,
        bbox: &Rect,
        q: &[f64],
        eps: f64,
        out: &mut Vec<u32>,
        work: &mut Work,
    ) {
        // Every invocation tests one node's bounding box.
        work.visits += 1;
        if dist_to_box(&self.metric, q, bbox.lo(), bbox.hi()) > eps {
            return;
        }
        match node {
            Node::Leaf { points } => {
                let bound = self.metric.to_surrogate(eps);
                work.evals += points.len() as u64;
                for &i in points {
                    if self.metric.surrogate(q, self.data.point(i)) <= bound {
                        out.push(i);
                    }
                }
            }
            Node::Inner {
                bbox_left,
                bbox_right,
                left,
                right,
                ..
            } => {
                self.range_rec(left, bbox_left, q, eps, out, work);
                self.range_rec(right, bbox_right, q, eps, out, work);
            }
        }
    }

    fn knn_rec(
        &self,
        node: &Node,
        bbox: &Rect,
        q: &[f64],
        k: usize,
        heap: &mut BinaryHeap<(F64, u32)>,
        work: &mut Work,
    ) {
        work.visits += 1;
        let worst = if heap.len() == k {
            heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };
        if dist_to_box(&self.metric, q, bbox.lo(), bbox.hi()) > worst {
            return;
        }
        match node {
            Node::Leaf { points } => {
                work.evals += points.len() as u64;
                for &i in points {
                    let d = self.metric.dist(q, self.data.point(i));
                    if heap.len() < k {
                        heap.push((F64(d), i));
                    } else if let Some(&(w, _)) = heap.peek() {
                        if d < w.0 {
                            heap.pop();
                            heap.push((F64(d), i));
                        }
                    }
                }
            }
            Node::Inner {
                bbox_left,
                bbox_right,
                left,
                right,
                ..
            } => {
                // Descend into the nearer child first to tighten the bound.
                let dl = dist_to_box(&self.metric, q, bbox_left.lo(), bbox_left.hi());
                let dr = dist_to_box(&self.metric, q, bbox_right.lo(), bbox_right.hi());
                if dl <= dr {
                    self.knn_rec(left, bbox_left, q, k, heap, work);
                    self.knn_rec(right, bbox_right, q, k, heap, work);
                } else {
                    self.knn_rec(right, bbox_right, q, k, heap, work);
                    self.knn_rec(left, bbox_left, q, k, heap, work);
                }
            }
        }
    }

    /// Depth of the tree (1 for a single leaf); diagnostic.
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Inner { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        self.root.as_ref().map(depth).unwrap_or(0)
    }
}

impl<M: Metric> NeighborIndex for KdTree<'_, M> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        out.clear();
        let mut work = Work::default();
        if let (Some(root), Some(bbox)) = (&self.root, &self.bbox) {
            self.range_rec(root, bbox, q, eps, out, &mut work);
        }
        if let Some(s) = &self.sheet {
            s.record_range(work.evals, work.visits);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap = BinaryHeap::with_capacity(k + 1);
        let mut work = Work::default();
        if let (Some(root), Some(bbox)) = (&self.root, &self.bbox) {
            self.knn_rec(root, bbox, q, k, &mut heap, &mut work);
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d, i)| (i, d.0)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(s) = &self.sheet {
            s.record_knn(work.evals, work.visits);
        }
        out
    }
}

/// Per-query work tally, accumulated in plain registers and flushed to
/// the sheet once per query.
#[derive(Debug, Default)]
struct Work {
    evals: u64,
    visits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::{Chebyshev, Euclidean, Manhattan};

    #[test]
    fn matches_linear_scan_euclidean() {
        let d = testutil::random_dataset(500, 11);
        let idx = KdTree::new(&d, Euclidean);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn matches_linear_scan_manhattan() {
        let d = testutil::random_dataset(300, 12);
        let idx = KdTree::new(&d, Manhattan);
        testutil::check_against_linear(&idx, &d, Manhattan);
    }

    #[test]
    fn matches_linear_scan_chebyshev() {
        let d = testutil::random_dataset(300, 13);
        let idx = KdTree::new(&d, Chebyshev);
        testutil::check_against_linear(&idx, &d, Chebyshev);
    }

    #[test]
    fn handles_duplicate_points() {
        let mut flat = Vec::new();
        for _ in 0..100 {
            flat.extend_from_slice(&[1.0, 1.0]);
        }
        for _ in 0..100 {
            flat.extend_from_slice(&[2.0, 2.0]);
        }
        let d = Dataset::from_flat(2, flat);
        let idx = KdTree::new(&d, Euclidean);
        assert_eq!(idx.range_vec(&[1.0, 1.0], 0.5).len(), 100);
        assert_eq!(idx.range_vec(&[1.5, 1.5], 10.0).len(), 200);
        assert_eq!(idx.knn(&[1.0, 1.0], 150).len(), 150);
    }

    #[test]
    fn depth_is_logarithmic() {
        let d = testutil::random_dataset(1024, 5);
        let idx = KdTree::new(&d, Euclidean);
        // 1024 points / leaf 16 = 64 leaves -> depth ~7; allow slack for
        // uneven medians.
        assert!(idx.depth() <= 12, "depth {} too large", idx.depth());
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::new(2);
        let idx = KdTree::new(&empty, Euclidean);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 1.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 1).is_empty());

        let mut one = Dataset::new(2);
        one.push(&[3.0, 4.0]);
        let idx = KdTree::new(&one, Euclidean);
        assert_eq!(idx.knn(&[0.0, 0.0], 5), vec![(0, 5.0)]);
        assert_eq!(idx.range_vec(&[0.0, 0.0], 5.0), vec![0]);
        assert!(idx.range_vec(&[0.0, 0.0], 4.9).is_empty());
    }
}
