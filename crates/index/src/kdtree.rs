//! Balanced kd-tree, stored flat.
//!
//! Built once by recursive median splits (no insertion support — the
//! clustering pipeline builds the index per run). The build flattens the
//! tree into arena storage: a `Vec`-backed node pool addressed by `u32`
//! ids (root at 0), a parallel bounding-box arena, and the leaf points
//! packed into traversal-ordered structure-of-arrays blocks. Queries
//! walk an explicit stack — no recursion, no pointer chasing — and every
//! leaf scan is one batched [`Metric::surrogate_batch`] kernel call over
//! contiguous memory. Range queries prune subtrees in surrogate space
//! via [`Metric::surrogate_dist_to_box`]; the knn path prunes by true
//! distance via [`crate::dist_to_box`] (its heap stores distances).

use crate::linear::ordered::F64;
use crate::{dist_to_box, scan_block, with_scratch, NeighborIndex, QueryWorkspace};
use dbdc_geom::{Dataset, Metric, Rect};
use dbdc_obs::CounterSheet;
use std::collections::BinaryHeap;
use std::sync::Arc;

const LEAF_SIZE: usize = 16;

/// One arena node. Children / block offsets are indices into the
/// sibling arenas, so the whole tree lives in three contiguous `Vec`s.
#[derive(Debug, Clone, Copy)]
enum FlatNode {
    Leaf {
        /// First point of this leaf in the packed `ids` arena.
        start: u32,
        /// Number of points in the leaf.
        len: u32,
        /// Offset of this leaf's SoA block in the `coords` arena
        /// (coordinate `d` of the block's `k`-th point is at
        /// `coords + d * len + k`).
        coords: u32,
    },
    Inner {
        left: u32,
        right: u32,
    },
}

/// A static, balanced kd-tree over a dataset, in flat arena storage.
#[derive(Debug)]
pub struct KdTree<'a, M> {
    data: &'a Dataset,
    metric: M,
    /// Node pool; the root is node 0 (empty iff the dataset is empty).
    nodes: Vec<FlatNode>,
    /// Node `i`'s bounding box at `[i * 2 * dim, (i + 1) * 2 * dim)`:
    /// `dim` low coordinates, then `dim` high coordinates.
    bounds: Vec<f64>,
    /// Leaf point ids, concatenated in traversal (preorder) order.
    ids: Vec<u32>,
    /// Per-leaf SoA coordinate blocks, same order as `ids`.
    coords: Vec<f64>,
    dim: usize,
    sheet: Option<Arc<CounterSheet>>,
}

impl<'a, M: Metric> KdTree<'a, M> {
    /// Builds the tree by recursive median splits along the widest
    /// dimension. `O(n log² n)` build via per-level selects.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        let mut tree = Self {
            data,
            metric,
            nodes: Vec::new(),
            bounds: Vec::new(),
            ids: Vec::with_capacity(data.len()),
            coords: Vec::with_capacity(data.len() * data.dim()),
            dim: data.dim(),
            sheet: None,
        };
        if let Some(bbox) = data.bounding_rect() {
            let mut ids: Vec<u32> = (0..data.len() as u32).collect();
            tree.build(&mut ids, bbox);
        }
        tree
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }

    /// Appends the subtree over `ids` (bounded by `bbox`) to the arenas
    /// and returns its node id. Children are appended after their
    /// parent, left subtree first, so leaf blocks land in traversal
    /// order.
    fn build(&mut self, ids: &mut [u32], bbox: Rect) -> u32 {
        let me = self.nodes.len() as u32;
        self.bounds.extend_from_slice(bbox.lo());
        self.bounds.extend_from_slice(bbox.hi());
        if ids.len() <= LEAF_SIZE {
            let start = self.ids.len() as u32;
            let coords = self.coords.len() as u32;
            self.ids.extend_from_slice(ids);
            for d in 0..self.dim {
                for &i in ids.iter() {
                    self.coords.push(self.data.point(i)[d]);
                }
            }
            self.nodes.push(FlatNode::Leaf {
                start,
                len: ids.len() as u32,
                coords,
            });
            return me;
        }
        // Split along the widest dimension of the actual bounding box.
        let dim = (0..self.data.dim())
            .max_by(|&a, &b| {
                let wa = bbox.hi()[a] - bbox.lo()[a];
                let wb = bbox.hi()[b] - bbox.lo()[b];
                wa.total_cmp(&wb)
            })
            .expect("dataset has at least 1 dimension");
        let mid = ids.len() / 2;
        let data = self.data;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            data.point(a)[dim].total_cmp(&data.point(b)[dim])
        });
        let (l, r) = ids.split_at_mut(mid);
        let bbox_left =
            Rect::bounding(l.iter().map(|&i| data.point(i))).expect("left split is non-empty");
        let bbox_right =
            Rect::bounding(r.iter().map(|&i| data.point(i))).expect("right split is non-empty");
        // Reserve the parent slot, then append both subtrees and patch
        // the child ids in.
        self.nodes.push(FlatNode::Inner { left: 0, right: 0 });
        let left = self.build(l, bbox_left);
        let right = self.build(r, bbox_right);
        self.nodes[me as usize] = FlatNode::Inner { left, right };
        me
    }

    /// Node `n`'s bounding box as `(lo, hi)` slices.
    #[inline]
    fn node_bounds(&self, n: u32) -> (&[f64], &[f64]) {
        let off = n as usize * 2 * self.dim;
        let b = &self.bounds[off..off + 2 * self.dim];
        b.split_at(self.dim)
    }

    /// Depth of the tree (1 for a single leaf); diagnostic.
    pub fn depth(&self) -> usize {
        fn depth(nodes: &[FlatNode], n: u32) -> usize {
            match nodes[n as usize] {
                FlatNode::Leaf { .. } => 1,
                FlatNode::Inner { left, right } => 1 + depth(nodes, left).max(depth(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth(&self.nodes, 0)
        }
    }
}

impl<M: Metric> NeighborIndex for KdTree<'_, M> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        with_scratch(|ws| self.range_with(q, eps, out, ws));
    }

    fn range_with(&self, q: &[f64], eps: f64, out: &mut Vec<u32>, ws: &mut QueryWorkspace) {
        out.clear();
        let mut work = Work::default();
        if !self.nodes.is_empty() {
            let bound = self.metric.to_surrogate(eps);
            ws.stack.clear();
            ws.stack.push(0);
            // Pop order (left child above right) reproduces the
            // original recursion's preorder, so `out` keeps the exact
            // visit order downstream consumers depend on.
            while let Some(n) = ws.stack.pop() {
                // Every popped node tests one bounding box.
                work.visits += 1;
                let (lo, hi) = self.node_bounds(n);
                if self.metric.surrogate_dist_to_box(q, lo, hi) > bound {
                    continue;
                }
                match self.nodes[n as usize] {
                    FlatNode::Leaf { start, len, coords } => {
                        work.evals += len as u64;
                        let (start, len, coords) = (start as usize, len as usize, coords as usize);
                        scan_block(
                            &self.metric,
                            q,
                            &self.ids[start..start + len],
                            &self.coords[coords..coords + self.dim * len],
                            len,
                            bound,
                            out,
                        );
                    }
                    FlatNode::Inner { left, right } => {
                        ws.stack.push(right);
                        ws.stack.push(left);
                    }
                }
            }
        }
        if let Some(s) = &self.sheet {
            s.record_range(work.evals, work.visits);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<(F64, u32)> = BinaryHeap::with_capacity(k + 1);
        let mut work = Work::default();
        if !self.nodes.is_empty() {
            let mut stack: Vec<u32> = vec![0];
            while let Some(n) = stack.pop() {
                work.visits += 1;
                let worst = if heap.len() == k {
                    heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY)
                } else {
                    f64::INFINITY
                };
                let (lo, hi) = self.node_bounds(n);
                if dist_to_box(&self.metric, q, lo, hi) > worst {
                    continue;
                }
                match self.nodes[n as usize] {
                    FlatNode::Leaf { start, len, .. } => {
                        work.evals += len as u64;
                        for &i in &self.ids[start as usize..(start + len) as usize] {
                            let d = self.metric.dist(q, self.data.point(i));
                            if heap.len() < k {
                                heap.push((F64(d), i));
                            } else if let Some(&(w, _)) = heap.peek() {
                                if d < w.0 {
                                    heap.pop();
                                    heap.push((F64(d), i));
                                }
                            }
                        }
                    }
                    FlatNode::Inner { left, right } => {
                        // Descend into the nearer child first (pushed
                        // last) to tighten the bound early.
                        let (llo, lhi) = self.node_bounds(left);
                        let (rlo, rhi) = self.node_bounds(right);
                        let dl = dist_to_box(&self.metric, q, llo, lhi);
                        let dr = dist_to_box(&self.metric, q, rlo, rhi);
                        if dl <= dr {
                            stack.push(right);
                            stack.push(left);
                        } else {
                            stack.push(left);
                            stack.push(right);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d, i)| (i, d.0)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(s) = &self.sheet {
            s.record_knn(work.evals, work.visits);
        }
        out
    }
}

/// Per-query work tally, accumulated in plain registers and flushed to
/// the sheet once per query.
#[derive(Debug, Default)]
struct Work {
    evals: u64,
    visits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::{Chebyshev, Euclidean, Manhattan, Minkowski};

    #[test]
    fn matches_linear_scan_euclidean() {
        let d = testutil::random_dataset(500, 11);
        let idx = KdTree::new(&d, Euclidean);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn matches_linear_scan_manhattan() {
        let d = testutil::random_dataset(300, 12);
        let idx = KdTree::new(&d, Manhattan);
        testutil::check_against_linear(&idx, &d, Manhattan);
    }

    #[test]
    fn matches_linear_scan_chebyshev() {
        let d = testutil::random_dataset(300, 13);
        let idx = KdTree::new(&d, Chebyshev);
        testutil::check_against_linear(&idx, &d, Chebyshev);
    }

    #[test]
    fn matches_linear_scan_minkowski() {
        let d = testutil::random_dataset(300, 14);
        let idx = KdTree::new(&d, Minkowski::new(3.0));
        testutil::check_against_linear(&idx, &d, Minkowski::new(3.0));
    }

    #[test]
    fn range_with_matches_range() {
        let d = testutil::random_dataset(400, 21);
        let idx = KdTree::new(&d, Euclidean);
        let mut ws = QueryWorkspace::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in (0..d.len() as u32).step_by(17) {
            for eps in [0.5, 3.0, 20.0] {
                idx.range(d.point(i), eps, &mut a);
                idx.range_with(d.point(i), eps, &mut b, &mut ws);
                assert_eq!(a, b, "q={i} eps={eps}: order must match too");
            }
        }
    }

    #[test]
    fn handles_duplicate_points() {
        let mut flat = Vec::new();
        for _ in 0..100 {
            flat.extend_from_slice(&[1.0, 1.0]);
        }
        for _ in 0..100 {
            flat.extend_from_slice(&[2.0, 2.0]);
        }
        let d = Dataset::from_flat(2, flat);
        let idx = KdTree::new(&d, Euclidean);
        assert_eq!(idx.range_vec(&[1.0, 1.0], 0.5).len(), 100);
        assert_eq!(idx.range_vec(&[1.5, 1.5], 10.0).len(), 200);
        assert_eq!(idx.knn(&[1.0, 1.0], 150).len(), 150);
    }

    #[test]
    fn depth_is_logarithmic() {
        let d = testutil::random_dataset(1024, 5);
        let idx = KdTree::new(&d, Euclidean);
        // 1024 points / leaf 16 = 64 leaves -> depth ~7; allow slack for
        // uneven medians.
        assert!(idx.depth() <= 12, "depth {} too large", idx.depth());
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::new(2);
        let idx = KdTree::new(&empty, Euclidean);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 1.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 1).is_empty());

        let mut one = Dataset::new(2);
        one.push(&[3.0, 4.0]);
        let idx = KdTree::new(&one, Euclidean);
        assert_eq!(idx.knn(&[0.0, 0.0], 5), vec![(0, 5.0)]);
        assert_eq!(idx.range_vec(&[0.0, 0.0], 5.0), vec![0]);
        assert!(idx.range_vec(&[0.0, 0.0], 4.9).is_empty());
    }
}
