//! Balanced kd-tree, stored flat.
//!
//! Built once by recursive median splits (no insertion support — the
//! clustering pipeline builds the index per run). The build flattens the
//! tree into arena storage: a `Vec`-backed node pool addressed by `u32`
//! ids (root at 0), a parallel bounding-box arena, and the leaf points
//! packed into traversal-ordered structure-of-arrays blocks. Queries
//! walk an explicit stack — no recursion, no pointer chasing — and every
//! leaf scan is one batched [`Metric::surrogate_batch`] kernel call over
//! contiguous memory. Range queries prune subtrees in surrogate space
//! via [`Metric::surrogate_dist_to_box`]; the knn path prunes by true
//! distance via [`crate::dist_to_box`] (its heap stores distances).

use crate::linear::ordered::F64;
use crate::{dist_to_box, scan_block, scan_block_f32, with_scratch, NeighborIndex, QueryWorkspace};
use crate::{Precision, QueryF32};
use dbdc_geom::{Dataset, Metric, Rect};
use dbdc_obs::CounterSheet;
use std::collections::BinaryHeap;
use std::sync::Arc;

const LEAF_SIZE: usize = 16;

/// Subtrees at or below this many points always build sequentially
/// even when more workers are available — below it the splice overhead
/// dominates the split work.
const PAR_BUILD_CUTOFF: usize = 1024;

/// One arena node. Children / block offsets are indices into the
/// sibling arenas, so the whole tree lives in three contiguous `Vec`s.
#[derive(Debug, Clone, Copy)]
enum FlatNode {
    Leaf {
        /// First point of this leaf in the packed `ids` arena.
        start: u32,
        /// Number of points in the leaf.
        len: u32,
        /// Offset of this leaf's SoA block in the `coords` arena
        /// (coordinate `d` of the block's `k`-th point is at
        /// `coords + d * len + k`).
        coords: u32,
    },
    Inner {
        left: u32,
        right: u32,
    },
}

/// The flat arenas of a built tree, separated from [`KdTree`] so the
/// parallel build can grow disjoint subtrees in private arenas and
/// splice them together afterwards.
#[derive(Debug, Default)]
struct KdArenas {
    nodes: Vec<FlatNode>,
    bounds: Vec<f64>,
    ids: Vec<u32>,
    coords: Vec<f64>,
}

impl KdArenas {
    /// Appends `sub`'s arenas to `self`, rebasing every intra-arena
    /// offset, and returns the new node id of `sub`'s root. The
    /// sequential layout is strict preorder — a subtree occupies one
    /// contiguous run of every arena — so appending a fully built
    /// subtree here is byte-identical to having built it in place.
    fn splice(&mut self, sub: KdArenas) -> u32 {
        let node_base = self.nodes.len() as u32;
        let ids_base = self.ids.len() as u32;
        let coords_base = self.coords.len() as u32;
        for n in sub.nodes {
            self.nodes.push(match n {
                FlatNode::Leaf { start, len, coords } => FlatNode::Leaf {
                    start: start + ids_base,
                    len,
                    coords: coords + coords_base,
                },
                FlatNode::Inner { left, right } => FlatNode::Inner {
                    left: left + node_base,
                    right: right + node_base,
                },
            });
        }
        self.bounds.extend_from_slice(&sub.bounds);
        self.ids.extend_from_slice(&sub.ids);
        self.coords.extend_from_slice(&sub.coords);
        node_base
    }
}

/// The split axis of the sequential build: the widest dimension of the
/// node's bounding box. The parallel build calls the same function so
/// both pick identical axes.
fn split_dim(data: &Dataset, bbox: &Rect) -> usize {
    (0..data.dim())
        .max_by(|&a, &b| {
            let wa = bbox.hi()[a] - bbox.lo()[a];
            let wb = bbox.hi()[b] - bbox.lo()[b];
            wa.total_cmp(&wb)
        })
        .expect("dataset has at least 1 dimension")
}

/// One median split of `ids`, exactly as the sequential build performs
/// it, returning both halves with their bounding boxes.
#[allow(clippy::type_complexity)]
fn split_ids<'i>(
    data: &Dataset,
    ids: &'i mut [u32],
    bbox: &Rect,
) -> (&'i mut [u32], Rect, &'i mut [u32], Rect) {
    let dim = split_dim(data, bbox);
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        data.point(a)[dim].total_cmp(&data.point(b)[dim])
    });
    let (l, r) = ids.split_at_mut(mid);
    let bl = Rect::bounding(l.iter().map(|&i| data.point(i))).expect("left split is non-empty");
    let br = Rect::bounding(r.iter().map(|&i| data.point(i))).expect("right split is non-empty");
    (l, bl, r, br)
}

/// Appends the subtree over `ids` (bounded by `bbox`) to the arenas
/// and returns its node id. Children are appended after their parent,
/// left subtree first, so leaf blocks land in traversal order.
fn build_seq(data: &Dataset, out: &mut KdArenas, ids: &mut [u32], bbox: Rect) -> u32 {
    let me = out.nodes.len() as u32;
    out.bounds.extend_from_slice(bbox.lo());
    out.bounds.extend_from_slice(bbox.hi());
    if ids.len() <= LEAF_SIZE {
        let start = out.ids.len() as u32;
        let coords = out.coords.len() as u32;
        out.ids.extend_from_slice(ids);
        for d in 0..data.dim() {
            for &i in ids.iter() {
                out.coords.push(data.point(i)[d]);
            }
        }
        out.nodes.push(FlatNode::Leaf {
            start,
            len: ids.len() as u32,
            coords,
        });
        return me;
    }
    let (l, bl, r, br) = split_ids(data, ids, &bbox);
    // Reserve the parent slot, then append both subtrees and patch the
    // child ids in.
    out.nodes.push(FlatNode::Inner { left: 0, right: 0 });
    let left = build_seq(data, out, l, bl);
    let right = build_seq(data, out, r, br);
    out.nodes[me as usize] = FlatNode::Inner { left, right };
    me
}

/// Parallel build: splits exactly like [`build_seq`], hands the left
/// half to a scoped worker while the current thread takes the right,
/// then splices the finished subtree arenas back in preorder. Because
/// the split and the subtree layouts are deterministic, the output is
/// bit-identical to the sequential build at every `threads` value.
fn build_par(
    data: &Dataset,
    out: &mut KdArenas,
    ids: &mut [u32],
    bbox: Rect,
    threads: usize,
) -> u32 {
    if threads <= 1 || ids.len() <= PAR_BUILD_CUTOFF.max(LEAF_SIZE) {
        return build_seq(data, out, ids, bbox);
    }
    let me = out.nodes.len() as u32;
    out.bounds.extend_from_slice(bbox.lo());
    out.bounds.extend_from_slice(bbox.hi());
    out.nodes.push(FlatNode::Inner { left: 0, right: 0 });
    let (l, bl, r, br) = split_ids(data, ids, &bbox);
    let lt = threads / 2;
    let rt = threads - lt;
    let mut la = KdArenas::default();
    let mut ra = KdArenas::default();
    std::thread::scope(|s| {
        let lh = s.spawn(|| build_par(data, &mut la, l, bl, lt));
        build_par(data, &mut ra, r, br, rt);
        lh.join().expect("kd-tree build worker panicked");
    });
    let left = out.splice(la);
    let right = out.splice(ra);
    out.nodes[me as usize] = FlatNode::Inner { left, right };
    me
}

/// A static, balanced kd-tree over a dataset, in flat arena storage.
#[derive(Debug)]
pub struct KdTree<'a, M> {
    data: &'a Dataset,
    metric: M,
    /// Node pool; the root is node 0 (empty iff the dataset is empty).
    nodes: Vec<FlatNode>,
    /// Node `i`'s bounding box at `[i * 2 * dim, (i + 1) * 2 * dim)`:
    /// `dim` low coordinates, then `dim` high coordinates.
    bounds: Vec<f64>,
    /// Leaf point ids, concatenated in traversal (preorder) order.
    ids: Vec<u32>,
    /// Per-leaf SoA coordinate blocks, same order as `ids`. Empty when
    /// the tree was built with [`Precision::F32`].
    coords: Vec<f64>,
    /// `f32` twin of `coords`, populated instead of it under
    /// [`Precision::F32`].
    coords32: Vec<f32>,
    precision: Precision,
    dim: usize,
    sheet: Option<Arc<CounterSheet>>,
}

impl<'a, M: Metric> KdTree<'a, M> {
    /// Builds the tree by recursive median splits along the widest
    /// dimension. `O(n log² n)` build via per-level selects.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        Self::with_options(data, metric, 1, Precision::F64)
    }

    /// [`KdTree::new`] with `threads` construction workers.
    pub fn with_threads(data: &'a Dataset, metric: M, threads: usize) -> Self {
        Self::with_options(data, metric, threads, Precision::F64)
    }

    /// Builds the tree with `threads` construction workers and the
    /// given scan-path precision. Construction is bit-identical across
    /// thread counts; under [`Precision::F32`] the leaf coordinate
    /// blocks are narrowed to `f32` after the (still fully `f64`)
    /// build, so the tree structure, bounds and id order are identical
    /// to the `f64` tree — only the leaf candidate test is approximate.
    pub fn with_options(
        data: &'a Dataset,
        metric: M,
        threads: usize,
        precision: Precision,
    ) -> Self {
        let mut arenas = KdArenas {
            nodes: Vec::new(),
            bounds: Vec::new(),
            ids: Vec::with_capacity(data.len()),
            coords: Vec::with_capacity(data.len() * data.dim()),
        };
        if let Some(bbox) = data.bounding_rect() {
            let mut ids: Vec<u32> = (0..data.len() as u32).collect();
            build_par(data, &mut arenas, &mut ids, bbox, threads.max(1));
        }
        let mut tree = Self {
            data,
            metric,
            nodes: arenas.nodes,
            bounds: arenas.bounds,
            ids: arenas.ids,
            coords: arenas.coords,
            coords32: Vec::new(),
            precision,
            dim: data.dim(),
            sheet: None,
        };
        if precision == Precision::F32 {
            tree.coords32 = tree.coords.iter().map(|&x| x as f32).collect();
            tree.coords = Vec::new();
        }
        tree
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }

    /// Serializes the flat arenas to a stable bit pattern. Test hook
    /// for the construction-identity gate: parallel builds must be
    /// byte-for-byte equal to sequential ones.
    #[doc(hidden)]
    pub fn arena_bits(&self) -> Vec<u64> {
        let mut v = Vec::new();
        for n in &self.nodes {
            match *n {
                FlatNode::Leaf { start, len, coords } => {
                    v.extend_from_slice(&[0, start as u64, len as u64, coords as u64]);
                }
                FlatNode::Inner { left, right } => {
                    v.extend_from_slice(&[1, left as u64, right as u64, 0]);
                }
            }
        }
        v.extend(self.bounds.iter().map(|b| b.to_bits()));
        v.extend(self.ids.iter().map(|&i| i as u64));
        v.extend(self.coords.iter().map(|c| c.to_bits()));
        v.extend(self.coords32.iter().map(|c| c.to_bits() as u64));
        v
    }

    /// Node `n`'s bounding box as `(lo, hi)` slices.
    #[inline]
    fn node_bounds(&self, n: u32) -> (&[f64], &[f64]) {
        let off = n as usize * 2 * self.dim;
        let b = &self.bounds[off..off + 2 * self.dim];
        b.split_at(self.dim)
    }

    /// Depth of the tree (1 for a single leaf); diagnostic.
    pub fn depth(&self) -> usize {
        fn depth(nodes: &[FlatNode], n: u32) -> usize {
            match nodes[n as usize] {
                FlatNode::Leaf { .. } => 1,
                FlatNode::Inner { left, right } => 1 + depth(nodes, left).max(depth(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth(&self.nodes, 0)
        }
    }
}

impl<M: Metric> NeighborIndex for KdTree<'_, M> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        with_scratch(|ws| self.range_with(q, eps, out, ws));
    }

    fn range_with(&self, q: &[f64], eps: f64, out: &mut Vec<u32>, ws: &mut QueryWorkspace) {
        out.clear();
        let mut work = Work::default();
        if !self.nodes.is_empty() {
            let bound = self.metric.to_surrogate(eps);
            // Box pruning stays f64 in both precisions (bounds are
            // exact); only the leaf candidate test narrows.
            let q32 = match self.precision {
                Precision::F32 => Some(QueryF32::new(q)),
                Precision::F64 => None,
            };
            ws.stack.clear();
            ws.stack.push(0);
            // Pop order (left child above right) reproduces the
            // original recursion's preorder, so `out` keeps the exact
            // visit order downstream consumers depend on.
            while let Some(n) = ws.stack.pop() {
                // Every popped node tests one bounding box.
                work.visits += 1;
                let (lo, hi) = self.node_bounds(n);
                if self.metric.surrogate_dist_to_box(q, lo, hi) > bound {
                    continue;
                }
                match self.nodes[n as usize] {
                    FlatNode::Leaf { start, len, coords } => {
                        work.evals += len as u64;
                        let (start, len, coords) = (start as usize, len as usize, coords as usize);
                        match &q32 {
                            None => scan_block(
                                &self.metric,
                                q,
                                &self.ids[start..start + len],
                                &self.coords[coords..coords + self.dim * len],
                                len,
                                bound,
                                out,
                            ),
                            Some(q32) => scan_block_f32(
                                &self.metric,
                                q32.as_slice(),
                                &self.ids[start..start + len],
                                &self.coords32[coords..coords + self.dim * len],
                                len,
                                bound as f32,
                                out,
                            ),
                        }
                    }
                    FlatNode::Inner { left, right } => {
                        ws.stack.push(right);
                        ws.stack.push(left);
                    }
                }
            }
        }
        if let Some(s) = &self.sheet {
            s.record_range(work.evals, work.visits);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<(F64, u32)> = BinaryHeap::with_capacity(k + 1);
        let mut work = Work::default();
        if !self.nodes.is_empty() {
            let mut stack: Vec<u32> = vec![0];
            while let Some(n) = stack.pop() {
                work.visits += 1;
                let worst = if heap.len() == k {
                    heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY)
                } else {
                    f64::INFINITY
                };
                let (lo, hi) = self.node_bounds(n);
                if dist_to_box(&self.metric, q, lo, hi) > worst {
                    continue;
                }
                match self.nodes[n as usize] {
                    FlatNode::Leaf { start, len, .. } => {
                        work.evals += len as u64;
                        for &i in &self.ids[start as usize..(start + len) as usize] {
                            let d = self.metric.dist(q, self.data.point(i));
                            if heap.len() < k {
                                heap.push((F64(d), i));
                            } else if let Some(&(w, _)) = heap.peek() {
                                if d < w.0 {
                                    heap.pop();
                                    heap.push((F64(d), i));
                                }
                            }
                        }
                    }
                    FlatNode::Inner { left, right } => {
                        // Descend into the nearer child first (pushed
                        // last) to tighten the bound early.
                        let (llo, lhi) = self.node_bounds(left);
                        let (rlo, rhi) = self.node_bounds(right);
                        let dl = dist_to_box(&self.metric, q, llo, lhi);
                        let dr = dist_to_box(&self.metric, q, rlo, rhi);
                        if dl <= dr {
                            stack.push(right);
                            stack.push(left);
                        } else {
                            stack.push(left);
                            stack.push(right);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d, i)| (i, d.0)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(s) = &self.sheet {
            s.record_knn(work.evals, work.visits);
        }
        out
    }
}

/// Per-query work tally, accumulated in plain registers and flushed to
/// the sheet once per query.
#[derive(Debug, Default)]
struct Work {
    evals: u64,
    visits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::{Chebyshev, Euclidean, Manhattan, Minkowski};

    #[test]
    fn matches_linear_scan_euclidean() {
        let d = testutil::random_dataset(500, 11);
        let idx = KdTree::new(&d, Euclidean);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn matches_linear_scan_manhattan() {
        let d = testutil::random_dataset(300, 12);
        let idx = KdTree::new(&d, Manhattan);
        testutil::check_against_linear(&idx, &d, Manhattan);
    }

    #[test]
    fn matches_linear_scan_chebyshev() {
        let d = testutil::random_dataset(300, 13);
        let idx = KdTree::new(&d, Chebyshev);
        testutil::check_against_linear(&idx, &d, Chebyshev);
    }

    #[test]
    fn matches_linear_scan_minkowski() {
        let d = testutil::random_dataset(300, 14);
        let idx = KdTree::new(&d, Minkowski::new(3.0));
        testutil::check_against_linear(&idx, &d, Minkowski::new(3.0));
    }

    #[test]
    fn range_with_matches_range() {
        let d = testutil::random_dataset(400, 21);
        let idx = KdTree::new(&d, Euclidean);
        let mut ws = QueryWorkspace::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in (0..d.len() as u32).step_by(17) {
            for eps in [0.5, 3.0, 20.0] {
                idx.range(d.point(i), eps, &mut a);
                idx.range_with(d.point(i), eps, &mut b, &mut ws);
                assert_eq!(a, b, "q={i} eps={eps}: order must match too");
            }
        }
    }

    #[test]
    fn handles_duplicate_points() {
        let mut flat = Vec::new();
        for _ in 0..100 {
            flat.extend_from_slice(&[1.0, 1.0]);
        }
        for _ in 0..100 {
            flat.extend_from_slice(&[2.0, 2.0]);
        }
        let d = Dataset::from_flat(2, flat);
        let idx = KdTree::new(&d, Euclidean);
        assert_eq!(idx.range_vec(&[1.0, 1.0], 0.5).len(), 100);
        assert_eq!(idx.range_vec(&[1.5, 1.5], 10.0).len(), 200);
        assert_eq!(idx.knn(&[1.0, 1.0], 150).len(), 150);
    }

    #[test]
    fn depth_is_logarithmic() {
        let d = testutil::random_dataset(1024, 5);
        let idx = KdTree::new(&d, Euclidean);
        // 1024 points / leaf 16 = 64 leaves -> depth ~7; allow slack for
        // uneven medians.
        assert!(idx.depth() <= 12, "depth {} too large", idx.depth());
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        // Large enough to clear PAR_BUILD_CUTOFF several levels deep.
        let d = testutil::random_dataset(5000, 31);
        let seq = KdTree::new(&d, Euclidean).arena_bits();
        for threads in [2, 3, 8] {
            let par = KdTree::with_threads(&d, Euclidean, threads).arena_bits();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn f32_build_shares_f64_structure() {
        let d = testutil::random_dataset(2000, 32);
        let f64_tree = KdTree::new(&d, Euclidean);
        let f32_tree = KdTree::with_options(&d, Euclidean, 4, Precision::F32);
        // Same nodes/bounds/ids; only the coords arena is narrowed.
        assert_eq!(f64_tree.nodes.len(), f32_tree.nodes.len());
        assert_eq!(f64_tree.bounds, f32_tree.bounds);
        assert_eq!(f64_tree.ids, f32_tree.ids);
        assert!(f64_tree.coords32.is_empty() && f32_tree.coords.is_empty());
        assert_eq!(f64_tree.coords.len(), f32_tree.coords32.len());
    }

    #[test]
    fn f32_range_agrees_away_from_boundary() {
        // With eps far from any pairwise distance, the f32 candidate
        // test cannot flip and results must match the f64 oracle.
        let d = testutil::random_dataset(600, 33);
        let f64_tree = KdTree::new(&d, Euclidean);
        let f32_tree = KdTree::with_options(&d, Euclidean, 1, Precision::F32);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..d.len() as u32).step_by(7) {
            for eps in [0.5, 3.0, 20.0] {
                f64_tree.range(d.point(i), eps, &mut a);
                f32_tree.range(d.point(i), eps, &mut b);
                total += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        // The f32 path is approximate near the ε boundary but must
        // agree almost everywhere on well-separated random data.
        assert!(
            agree * 100 >= total * 99,
            "f32 agreement too low: {agree}/{total}"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::new(2);
        let idx = KdTree::new(&empty, Euclidean);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 1.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 1).is_empty());

        let mut one = Dataset::new(2);
        one.push(&[3.0, 4.0]);
        let idx = KdTree::new(&one, Euclidean);
        assert_eq!(idx.knn(&[0.0, 0.0], 5), vec![(0, 5.0)]);
        assert_eq!(idx.range_vec(&[0.0, 0.0], 5.0), vec![0]);
        assert!(idx.range_vec(&[0.0, 0.0], 4.9).is_empty());
    }
}
