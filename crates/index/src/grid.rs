//! Uniform grid index.
//!
//! Buckets points into hypercube cells of side `cell` (typically the ε the
//! index will be queried with). An ε-range query then only inspects the
//! cells overlapping the query box, which for `cell == eps` in 2-d is at
//! most 3×3 cells. For the low-dimensional, roughly uniform data of the
//! paper's evaluation this is the fastest structure by a wide margin, which
//! is why the index ablation benchmark includes it.
//!
//! Cell membership lives in a `HashMap` keyed by cell coordinates, but the
//! points themselves are packed into two shared arenas — ids plus per-cell
//! structure-of-arrays coordinate blocks (cells packed in lexicographic key
//! order, per-cell insertion order preserved) — so scanning a cell is one
//! batched [`Metric::surrogate_batch`] kernel call over contiguous memory
//! and steady-state range queries allocate nothing.
//!
//! Correct for every Lp metric: the ε-ball under any Lp (p ≥ 1) is contained
//! in the L∞ box of radius ε, so scanning the cells that intersect that box
//! and verifying each candidate with the exact metric cannot miss a result.

use crate::linear::ordered::F64;
use crate::{scan_block, scan_block_f32, NeighborIndex};
use crate::{Precision, QueryF32};
use dbdc_geom::{Dataset, Metric};
use dbdc_obs::CounterSheet;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Dimensions up to this size keep the odometer scan state on the
/// stack; higher dimensions fall back to heap scratch per query.
const STACK_DIM: usize = 16;

/// One occupied cell's slice of the packed arenas.
#[derive(Debug, Clone, Copy)]
struct CellBlock {
    /// First point of the cell in the `ids` arena.
    start: u32,
    /// Number of points in the cell.
    len: u32,
    /// Offset of the cell's SoA block in the `coords` arena
    /// (coordinate `d` of the block's `k`-th point at
    /// `coords + d * len + k`).
    coords: u32,
}

/// A uniform grid over a dataset.
#[derive(Debug, Clone)]
pub struct GridIndex<'a, M> {
    data: &'a Dataset,
    metric: M,
    cell: f64,
    /// Cell coordinates -> packed block. A HashMap keeps memory
    /// proportional to the number of *occupied* cells, so sparse or
    /// clustered data does not explode the grid.
    cells: HashMap<Box<[i64]>, CellBlock>,
    /// Point ids, cell by cell (cells in lexicographic key order).
    ids: Vec<u32>,
    /// Per-cell SoA coordinate blocks, same order as `ids`. Empty when
    /// the grid was built with [`Precision::F32`].
    coords: Vec<f64>,
    /// `f32` twin of `coords`, populated instead of it under
    /// [`Precision::F32`].
    coords32: Vec<f32>,
    precision: Precision,
    sheet: Option<Arc<CounterSheet>>,
}

/// Packs a run of buckets into the given disjoint arena slices; the
/// parallel build hands each worker one run.
fn pack_run(data: &Dataset, run: &[(Box<[i64]>, Vec<u32>)], ids: &mut [u32], coords: &mut [f64]) {
    let dim = data.dim();
    let mut i = 0usize;
    let mut c = 0usize;
    for (_, pts) in run {
        ids[i..i + pts.len()].copy_from_slice(pts);
        for d in 0..dim {
            for &p in pts {
                coords[c] = data.point(p)[d];
                c += 1;
            }
        }
        i += pts.len();
    }
}

impl<'a, M: Metric> GridIndex<'a, M> {
    /// Builds a grid with cells of side `cell` over `data`.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn new(data: &'a Dataset, metric: M, cell: f64) -> Self {
        Self::with_options(data, metric, cell, 1, Precision::F64)
    }

    /// [`GridIndex::new`] with `threads` construction workers.
    pub fn with_threads(data: &'a Dataset, metric: M, cell: f64, threads: usize) -> Self {
        Self::with_options(data, metric, cell, threads, Precision::F64)
    }

    /// Builds the grid with `threads` construction workers and the
    /// given scan-path precision. Bucketing and the key sort stay
    /// sequential; the arena layout is then fully determined by a
    /// prefix scan over the sorted buckets, so workers fill disjoint
    /// arena ranges in parallel and the result is bit-identical at
    /// every thread count.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn with_options(
        data: &'a Dataset,
        metric: M,
        cell: f64,
        threads: usize,
        precision: Precision,
    ) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell size must be positive and finite"
        );
        let mut buckets: HashMap<Box<[i64]>, Vec<u32>> = HashMap::new();
        for (i, p) in data.iter().enumerate() {
            buckets
                .entry(Self::cell_of(p, cell))
                .or_default()
                .push(i as u32);
        }
        // Pack cells in sorted key order so the arena layout (and with
        // it any cache behavior) is deterministic regardless of hash
        // seeding; per-cell order stays insertion (ascending id) order.
        let mut buckets: Vec<(Box<[i64]>, Vec<u32>)> = buckets.into_iter().collect();
        buckets.sort_by(|a, b| a.0.cmp(&b.0));
        let dim = data.dim();
        let n = data.len();
        let mut cells = HashMap::with_capacity(buckets.len());
        let mut off = 0u32;
        for (key, pts) in &buckets {
            cells.insert(
                key.clone(),
                CellBlock {
                    start: off,
                    len: pts.len() as u32,
                    coords: off * dim as u32,
                },
            );
            off += pts.len() as u32;
        }
        let mut ids = vec![0u32; n];
        let mut coords = vec![0.0f64; n * dim];
        let workers = threads.max(1).min(buckets.len().max(1));
        {
            // Carve the arenas into disjoint runs of roughly equal
            // point count; each worker packs one run.
            let target = n.div_ceil(workers).max(1);
            let mut bucket_rest: &[(Box<[i64]>, Vec<u32>)] = &buckets;
            let mut ids_rest: &mut [u32] = &mut ids;
            let mut coords_rest: &mut [f64] = &mut coords;
            std::thread::scope(|s| {
                while !bucket_rest.is_empty() {
                    let mut take = 0usize;
                    let mut pts = 0usize;
                    while take < bucket_rest.len() && pts < target {
                        pts += bucket_rest[take].1.len();
                        take += 1;
                    }
                    let (run, br) = bucket_rest.split_at(take);
                    bucket_rest = br;
                    let (id_run, ir) = std::mem::take(&mut ids_rest).split_at_mut(pts);
                    ids_rest = ir;
                    let (coord_run, cr) = std::mem::take(&mut coords_rest).split_at_mut(pts * dim);
                    coords_rest = cr;
                    if workers <= 1 {
                        pack_run(data, run, id_run, coord_run);
                    } else {
                        s.spawn(move || pack_run(data, run, id_run, coord_run));
                    }
                }
            });
        }
        let mut grid = Self {
            data,
            metric,
            cell,
            cells,
            ids,
            coords,
            coords32: Vec::new(),
            precision,
            sheet: None,
        };
        if precision == Precision::F32 {
            grid.coords32 = grid.coords.iter().map(|&x| x as f32).collect();
            grid.coords = Vec::new();
        }
        grid
    }

    /// Serializes the cell table and packed arenas to a stable bit
    /// pattern. Test hook for the construction-identity gate.
    #[doc(hidden)]
    pub fn arena_bits(&self) -> Vec<u64> {
        let mut v = Vec::new();
        let mut entries: Vec<_> = self.cells.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (k, b) in entries {
            v.extend(k.iter().map(|&c| c as u64));
            v.extend_from_slice(&[b.start as u64, b.len as u64, b.coords as u64]);
        }
        v.extend(self.ids.iter().map(|&i| i as u64));
        v.extend(self.coords.iter().map(|c| c.to_bits()));
        v.extend(self.coords32.iter().map(|c| c.to_bits() as u64));
        v
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }

    fn cell_of(p: &[f64], cell: f64) -> Box<[i64]> {
        p.iter().map(|&c| (c / cell).floor() as i64).collect()
    }

    /// The configured cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Visits every occupied cell intersecting the L∞ box of radius `r`
    /// around `q`, in odometer (lexicographic lattice) order. Returns
    /// the number of occupied cells probed (the node-visit count for
    /// this index).
    fn for_cells(&self, q: &[f64], r: f64, mut f: impl FnMut(CellBlock)) -> u64 {
        let dim = self.data.dim();
        let mut stack = [0i64; 3 * STACK_DIM];
        let mut heap;
        let buf: &mut [i64] = if dim <= STACK_DIM {
            &mut stack
        } else {
            heap = vec![0i64; 3 * dim];
            &mut heap
        };
        let (lo, rest) = buf.split_at_mut(dim);
        let (hi, cur) = rest.split_at_mut(rest.len() / 2);
        let (hi, cur) = (&mut hi[..dim], &mut cur[..dim]);
        for i in 0..dim {
            lo[i] = ((q[i] - r) / self.cell).floor() as i64;
            hi[i] = ((q[i] + r) / self.cell).floor() as i64;
            cur[i] = lo[i];
        }
        // Iterate the (hi-lo+1)^dim cell lattice with an odometer; dim is
        // small (2-3) in this workspace so this stays cheap.
        let mut visited = 0u64;
        'outer: loop {
            if let Some(&block) = self.cells.get(&cur[..]) {
                visited += 1;
                f(block);
            }
            for d in 0..dim {
                if cur[d] < hi[d] {
                    cur[d] += 1;
                    continue 'outer;
                }
                cur[d] = lo[d];
            }
            break;
        }
        visited
    }
}

impl<M: Metric> NeighborIndex for GridIndex<'_, M> {
    fn len(&self) -> usize {
        self.data.len()
    }

    // The default `range_with` delegates here; the grid has no
    // traversal stack, so `range` itself is already allocation-free.
    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        out.clear();
        let bound = self.metric.to_surrogate(eps);
        // Cell lookup stays on f64 coordinates in both precisions;
        // only the per-point candidate test narrows.
        let q32 = match self.precision {
            Precision::F32 => Some(QueryF32::new(q)),
            Precision::F64 => None,
        };
        let mut evals = 0u64;
        let visits = self.for_cells(q, eps, |b| {
            evals += b.len as u64;
            let (start, len, coords) = (b.start as usize, b.len as usize, b.coords as usize);
            match &q32 {
                None => scan_block(
                    &self.metric,
                    q,
                    &self.ids[start..start + len],
                    &self.coords[coords..coords + self.data.dim() * len],
                    len,
                    bound,
                    out,
                ),
                Some(q32) => scan_block_f32(
                    &self.metric,
                    q32.as_slice(),
                    &self.ids[start..start + len],
                    &self.coords32[coords..coords + self.data.dim() * len],
                    len,
                    bound as f32,
                    out,
                ),
            }
        });
        if let Some(s) = &self.sheet {
            s.record_range(evals, visits);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.data.is_empty() {
            return Vec::new();
        }
        // Expand shells of cells until the k-th best distance is covered by
        // the scanned radius; each pass rescans from scratch, which is fine
        // because knn is not on DBSCAN's hot path.
        let mut r = self.cell;
        let mut evals = 0u64;
        let mut visits = 0u64;
        loop {
            let mut heap: BinaryHeap<(F64, u32)> = BinaryHeap::with_capacity(k + 1);
            visits += self.for_cells(q, r, |b| {
                evals += b.len as u64;
                for &i in &self.ids[b.start as usize..(b.start + b.len) as usize] {
                    let d = self.metric.dist(q, self.data.point(i));
                    if heap.len() < k {
                        heap.push((F64(d), i));
                    } else if let Some(&(worst, _)) = heap.peek() {
                        if d < worst.0 {
                            heap.pop();
                            heap.push((F64(d), i));
                        }
                    }
                }
            });
            let full = heap.len() == k.min(self.data.len());
            let worst = heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY);
            // The scan at L∞ radius r is guaranteed complete for all true
            // distances <= r (since Lp >= L∞ for p >= 1... note the reverse:
            // L∞ <= Lp, so a point at Lp distance d has L∞ distance <= d and
            // was scanned if d <= r).
            if full && worst <= r {
                let mut out: Vec<(u32, f64)> = heap.into_iter().map(|(d, i)| (i, d.0)).collect();
                out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                if let Some(s) = &self.sheet {
                    s.record_knn(evals, visits);
                }
                return out;
            }
            if full {
                // Grow just enough to certify the current worst candidate.
                r = worst.max(r * 2.0);
            } else {
                r *= 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::{Chebyshev, Euclidean, Manhattan};

    #[test]
    fn matches_linear_scan_euclidean() {
        let d = testutil::random_dataset(400, 42);
        let idx = GridIndex::new(&d, Euclidean, 5.0);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn matches_linear_scan_manhattan() {
        let d = testutil::random_dataset(300, 7);
        let idx = GridIndex::new(&d, Manhattan, 2.0);
        testutil::check_against_linear(&idx, &d, Manhattan);
    }

    #[test]
    fn matches_linear_scan_chebyshev() {
        let d = testutil::random_dataset(300, 8);
        let idx = GridIndex::new(&d, Chebyshev, 3.0);
        testutil::check_against_linear(&idx, &d, Chebyshev);
    }

    #[test]
    fn tiny_cell_size_still_correct() {
        let d = testutil::random_dataset(100, 3);
        let idx = GridIndex::new(&d, Euclidean, 0.05);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn huge_cell_size_still_correct() {
        let d = testutil::random_dataset(100, 4);
        let idx = GridIndex::new(&d, Euclidean, 1000.0);
        // Points in [-50, 50] straddle the cell boundary at 0, so up to 2
        // cells per dimension may be occupied.
        assert!(idx.occupied_cells() <= 4);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn cells_preserve_insertion_order() {
        // All points in one cell: range must return them in id order,
        // exactly as the pre-packing implementation did.
        let d = Dataset::from_flat(2, vec![0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]);
        let idx = GridIndex::new(&d, Euclidean, 10.0);
        assert_eq!(idx.range_vec(&[0.25, 0.25], 5.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let d = Dataset::from_flat(2, vec![-0.5, -0.5, 0.5, 0.5, -1.5, -1.5]);
        let idx = GridIndex::new(&d, Euclidean, 1.0);
        let mut out = Vec::new();
        idx.range(&[-0.5, -0.5], 1.5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let idx = GridIndex::new(&d, Euclidean, 1.0);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 5.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cell() {
        let d = Dataset::new(2);
        let _ = GridIndex::new(&d, Euclidean, 0.0);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let d = testutil::random_dataset(3000, 51);
        let seq = GridIndex::new(&d, Euclidean, 2.5).arena_bits();
        for threads in [2, 3, 8] {
            let par = GridIndex::with_threads(&d, Euclidean, 2.5, threads).arena_bits();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn f32_range_matches_oracle_away_from_boundary() {
        let d = testutil::random_dataset(600, 52);
        let oracle = GridIndex::new(&d, Euclidean, 3.0);
        let narrow = GridIndex::with_options(&d, Euclidean, 3.0, 2, Precision::F32);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..d.len() as u32).step_by(9) {
            for eps in [0.5, 3.0, 20.0] {
                oracle.range(d.point(i), eps, &mut a);
                narrow.range(d.point(i), eps, &mut b);
                total += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        assert!(
            agree * 100 >= total * 99,
            "f32 agreement too low: {agree}/{total}"
        );
    }

    #[test]
    fn knn_across_distant_shells() {
        // Points far from the query force multiple shell expansions.
        let d = Dataset::from_flat(2, vec![100.0, 0.0, 200.0, 0.0, 300.0, 0.0]);
        let idx = GridIndex::new(&d, Euclidean, 1.0);
        let nn = idx.knn(&[0.0, 0.0], 2);
        assert_eq!(nn[0], (0, 100.0));
        assert_eq!(nn[1], (1, 200.0));
    }
}
