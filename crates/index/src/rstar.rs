//! R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! This is the spatial access method the paper uses for DBSCAN's region
//! queries (reference \[3\]). The implementation covers the full R*
//! insertion algorithm — ChooseSubtree with minimum *overlap* enlargement at
//! the leaf level, the topological split (choose split axis by minimum
//! margin sum, choose distribution by minimum overlap), and forced
//! reinsertion on first overflow per level — plus an STR (sort-tile-
//! recursive) bulk loader used when the whole dataset is known up front,
//! which is the common case in this workspace.
//!
//! Leaf entries are point indices into the borrowed [`Dataset`]; inner
//! entries own their child's bounding rectangle, so queries never touch
//! coordinates except to verify leaf candidates.

use crate::linear::ordered::F64;
use crate::{dist_to_box, scan_block, scan_block_f32, with_scratch, NeighborIndex, QueryWorkspace};
use crate::{Precision, QueryF32};
use dbdc_geom::{Dataset, Metric, Rect};
use dbdc_obs::CounterSheet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Maximum entries per node.
const MAX_ENTRIES: usize = 32;
/// Minimum entries per node (40% of MAX, the R* recommendation).
const MIN_ENTRIES: usize = 13;
/// Number of entries evicted by forced reinsertion (30% of MAX).
const REINSERT_COUNT: usize = 9;
/// STR bulk-load fill factor.
const STR_FILL: usize = 24;

#[derive(Debug)]
enum Node {
    Leaf { points: Vec<u32> },
    Inner { children: Vec<(Rect, Box<Node>)> },
}

impl Node {
    fn len(&self) -> usize {
        match self {
            Node::Leaf { points } => points.len(),
            Node::Inner { children } => children.len(),
        }
    }
}

/// Flattened query view of the tree: the whole structure in five
/// contiguous `Vec`s, built once after [`RStarTree::bulk_load`] and
/// walked by ε-range queries with an explicit stack. Leaf points are
/// packed into traversal-ordered structure-of-arrays blocks so every
/// leaf scan is one batched [`Metric::surrogate_batch`] call. Any
/// mutation (`insert` / `delete`) drops the view; queries then fall
/// back to the recursive `Box` tree until the next bulk load.
#[derive(Debug)]
struct FlatRStar {
    /// Node pool in preorder; root at 0.
    nodes: Vec<FlatRNode>,
    /// Child node ids of the inner nodes, concatenated in child order.
    children: Vec<u32>,
    /// Node `i`'s bounding box at `[i * 2 * dim, (i + 1) * 2 * dim)`:
    /// `dim` low coordinates, then `dim` high.
    bounds: Vec<f64>,
    /// Leaf point ids in traversal order.
    ids: Vec<u32>,
    /// Per-leaf SoA coordinate blocks, same order as `ids`. Empty when
    /// the view was narrowed to [`Precision::F32`].
    coords: Vec<f64>,
    /// `f32` twin of `coords`, populated instead of it under
    /// [`Precision::F32`].
    coords32: Vec<f32>,
    precision: Precision,
    dim: usize,
}

#[derive(Debug, Clone, Copy)]
enum FlatRNode {
    Leaf {
        /// First point in the `ids` arena.
        start: u32,
        len: u32,
        /// Offset of the leaf's SoA block in `coords` (coordinate `d`
        /// of the `k`-th point at `coords + d * len + k`).
        coords: u32,
    },
    Inner {
        /// First child in the `children` arena.
        start: u32,
        len: u32,
    },
}

impl FlatRStar {
    fn empty(dim: usize, n: usize) -> FlatRStar {
        FlatRStar {
            nodes: Vec::new(),
            children: Vec::new(),
            bounds: Vec::new(),
            ids: Vec::with_capacity(n),
            coords: Vec::with_capacity(n * dim),
            coords32: Vec::new(),
            precision: Precision::F64,
            dim,
        }
    }

    /// Flattens the tree with up to `threads` construction workers,
    /// fanning out over the root's children. Each worker flattens its
    /// subtrees into private arenas which are then spliced back in
    /// child order, so the result is bit-identical to the sequential
    /// (`threads == 1`) flattening.
    fn build<M: Metric>(tree: &RStarTree<'_, M>, threads: usize) -> Option<FlatRStar> {
        let root = tree.root.as_deref()?;
        let mut flat = FlatRStar::empty(tree.data.dim(), tree.n);
        let root_rect = tree.node_rect(root);
        let children = match root {
            Node::Inner { children } if threads > 1 && children.len() > 1 => children,
            _ => {
                flat.add(tree.data, root, &root_rect);
                return Some(flat);
            }
        };
        flat.bounds.extend_from_slice(root_rect.lo());
        flat.bounds.extend_from_slice(root_rect.hi());
        flat.nodes.push(FlatRNode::Inner { start: 0, len: 0 });
        let workers = threads.min(children.len());
        let chunk = children.len().div_ceil(workers);
        // Each worker flattens a contiguous run of root subtrees into
        // fresh arenas; joining in spawn order restores child order.
        let subs: Vec<FlatRStar> = std::thread::scope(|s| {
            let handles: Vec<_> = children
                .chunks(chunk)
                .map(|run| {
                    s.spawn(move || {
                        run.iter()
                            .map(|(r, c)| {
                                let mut sub = FlatRStar::empty(tree.data.dim(), c.len());
                                sub.add(tree.data, c, r);
                                sub
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("r*-tree flatten worker panicked"))
                .collect()
        });
        let kid_ids: Vec<u32> = subs.into_iter().map(|sub| flat.splice(sub)).collect();
        // The root's child list lands after every subtree's own
        // children entries, exactly as the sequential `add` appends it.
        let start = flat.children.len() as u32;
        flat.children.extend_from_slice(&kid_ids);
        flat.nodes[0] = FlatRNode::Inner {
            start,
            len: kid_ids.len() as u32,
        };
        Some(flat)
    }

    /// Appends `sub`'s arenas to `self`, rebasing every intra-arena
    /// offset, and returns the new node id of `sub`'s root. A subtree
    /// occupies one contiguous run of every arena in the sequential
    /// flattening, so splicing a privately built subtree reproduces the
    /// in-place layout exactly.
    fn splice(&mut self, sub: FlatRStar) -> u32 {
        let node_base = self.nodes.len() as u32;
        let children_base = self.children.len() as u32;
        let ids_base = self.ids.len() as u32;
        let coords_base = self.coords.len() as u32;
        for n in sub.nodes {
            self.nodes.push(match n {
                FlatRNode::Leaf { start, len, coords } => FlatRNode::Leaf {
                    start: start + ids_base,
                    len,
                    coords: coords + coords_base,
                },
                FlatRNode::Inner { start, len } => FlatRNode::Inner {
                    start: start + children_base,
                    len,
                },
            });
        }
        self.children
            .extend(sub.children.iter().map(|&c| c + node_base));
        self.bounds.extend_from_slice(&sub.bounds);
        self.ids.extend_from_slice(&sub.ids);
        self.coords.extend_from_slice(&sub.coords);
        node_base
    }

    /// Appends `node` (bounded by `rect`) and its subtree, children in
    /// their original order so traversal order — and with it the
    /// neighbor output order — matches the recursive path exactly.
    fn add(&mut self, data: &Dataset, node: &Node, rect: &Rect) -> u32 {
        let me = self.nodes.len() as u32;
        self.bounds.extend_from_slice(rect.lo());
        self.bounds.extend_from_slice(rect.hi());
        match node {
            Node::Leaf { points } => {
                let start = self.ids.len() as u32;
                let coords = self.coords.len() as u32;
                self.ids.extend_from_slice(points);
                for d in 0..self.dim {
                    for &i in points {
                        self.coords.push(data.point(i)[d]);
                    }
                }
                self.nodes.push(FlatRNode::Leaf {
                    start,
                    len: points.len() as u32,
                    coords,
                });
            }
            Node::Inner { children } => {
                // Reserve the parent slot, append the subtrees, then
                // patch the child range in.
                self.nodes.push(FlatRNode::Inner { start: 0, len: 0 });
                let kid_ids: Vec<u32> =
                    children.iter().map(|(r, c)| self.add(data, c, r)).collect();
                let start = self.children.len() as u32;
                self.children.extend_from_slice(&kid_ids);
                self.nodes[me as usize] = FlatRNode::Inner {
                    start,
                    len: kid_ids.len() as u32,
                };
            }
        }
        me
    }

    /// Node `n`'s bounding box as `(lo, hi)` slices.
    #[inline]
    fn node_bounds(&self, n: u32) -> (&[f64], &[f64]) {
        let off = n as usize * 2 * self.dim;
        let b = &self.bounds[off..off + 2 * self.dim];
        b.split_at(self.dim)
    }
}

/// An R*-tree over a borrowed dataset.
#[derive(Debug)]
pub struct RStarTree<'a, M> {
    data: &'a Dataset,
    metric: M,
    root: Option<Box<Node>>,
    /// Flattened query view; present iff the tree was bulk-loaded and
    /// not mutated since.
    flat: Option<FlatRStar>,
    /// Height of the tree: 1 = root is a leaf.
    height: usize,
    n: usize,
    sheet: Option<Arc<CounterSheet>>,
}

impl<'a, M: Metric> RStarTree<'a, M> {
    /// Creates an empty tree over `data`'s coordinate space; points must
    /// then be added with [`RStarTree::insert`]. Useful for testing the
    /// dynamic insertion path; most callers want [`RStarTree::bulk_load`].
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        Self {
            data,
            metric,
            root: None,
            flat: None,
            height: 0,
            n: 0,
            sheet: None,
        }
    }

    /// Attaches a counter sheet recording per-query work.
    pub fn observed(mut self, sheet: Arc<CounterSheet>) -> Self {
        self.sheet = Some(sheet);
        self
    }

    /// Bulk-loads all points of `data` with the STR algorithm.
    pub fn bulk_load(data: &'a Dataset, metric: M) -> Self {
        Self::bulk_load_opts(data, metric, 1, Precision::F64)
    }

    /// [`RStarTree::bulk_load`] with `threads` construction workers.
    pub fn bulk_load_threaded(data: &'a Dataset, metric: M, threads: usize) -> Self {
        Self::bulk_load_opts(data, metric, threads, Precision::F64)
    }

    /// Bulk-loads with `threads` construction workers and the given
    /// scan-path precision. The STR tiling itself stays sequential (it
    /// is a cheap series of selects); the expensive flatten fans out
    /// over the root's children and is bit-identical across thread
    /// counts. Under [`Precision::F32`] the flattened leaf blocks are
    /// narrowed after the fully-`f64` build; the recursive fallback
    /// used after `insert`/`delete` always stays `f64`.
    pub fn bulk_load_opts(
        data: &'a Dataset,
        metric: M,
        threads: usize,
        precision: Precision,
    ) -> Self {
        let mut tree = Self::new(data, metric);
        if data.is_empty() {
            return tree;
        }
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        // Pack points into leaves.
        let mut leaves: Vec<(Rect, Box<Node>)> = Vec::new();
        str_tile(data, &mut ids, 0, &mut |chunk| {
            let rect =
                Rect::bounding(chunk.iter().map(|&i| data.point(i))).expect("chunk is non-empty");
            leaves.push((
                rect,
                Box::new(Node::Leaf {
                    points: chunk.to_vec(),
                }),
            ));
        });
        tree.height = 1;
        // Pack levels upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut rects: Vec<(Rect, Box<Node>)> = Vec::new();
            std::mem::swap(&mut level, &mut rects);
            let mut order: Vec<u32> = (0..rects.len() as u32).collect();
            // Tile inner nodes by child-rect centers.
            let centers: Vec<Vec<f64>> = rects.iter().map(|(r, _)| r.center()).collect();
            let center_data = {
                let dim = data.dim();
                let mut flat = Vec::with_capacity(centers.len() * dim);
                for c in &centers {
                    flat.extend_from_slice(c);
                }
                Dataset::from_flat(dim, flat)
            };
            let mut groups: Vec<Vec<u32>> = Vec::new();
            str_tile(&center_data, &mut order, 0, &mut |chunk| {
                groups.push(chunk.to_vec());
            });
            // Move children into their groups (descending index extraction
            // would invalidate positions, so mark with Option).
            let mut slots: Vec<Option<(Rect, Box<Node>)>> = rects.into_iter().map(Some).collect();
            for g in groups {
                let children: Vec<(Rect, Box<Node>)> = g
                    .iter()
                    .map(|&i| slots[i as usize].take().expect("group ids unique"))
                    .collect();
                let rect = children
                    .iter()
                    .map(|(r, _)| r)
                    .fold(None::<Rect>, |acc, r| {
                        Some(acc.map_or_else(|| r.clone(), |a| a.union(r)))
                    })
                    .expect("group is non-empty");
                level.push((rect, Box::new(Node::Inner { children })));
            }
            tree.height += 1;
        }
        let (_, root) = level.pop().expect("at least one node");
        tree.root = Some(root);
        tree.n = data.len();
        tree.flat = FlatRStar::build(&tree, threads.max(1));
        if precision == Precision::F32 {
            if let Some(flat) = &mut tree.flat {
                flat.coords32 = flat.coords.iter().map(|&x| x as f32).collect();
                flat.coords = Vec::new();
                flat.precision = Precision::F32;
            }
        }
        tree
    }

    /// Serializes the flattened arenas to a stable bit pattern (empty
    /// when no flat view exists). Test hook for the construction-
    /// identity gate: parallel flattening must be byte-for-byte equal
    /// to sequential.
    #[doc(hidden)]
    pub fn arena_bits(&self) -> Vec<u64> {
        let mut v = Vec::new();
        let Some(flat) = &self.flat else {
            return v;
        };
        for n in &flat.nodes {
            match *n {
                FlatRNode::Leaf { start, len, coords } => {
                    v.extend_from_slice(&[0, start as u64, len as u64, coords as u64]);
                }
                FlatRNode::Inner { start, len } => {
                    v.extend_from_slice(&[1, start as u64, len as u64, 0]);
                }
            }
        }
        v.extend(flat.children.iter().map(|&c| c as u64));
        v.extend(flat.bounds.iter().map(|b| b.to_bits()));
        v.extend(flat.ids.iter().map(|&i| i as u64));
        v.extend(flat.coords.iter().map(|c| c.to_bits()));
        v.extend(flat.coords32.iter().map(|c| c.to_bits() as u64));
        v
    }

    /// Inserts point `id` (an index into the dataset) using the full R*
    /// insertion algorithm with forced reinsertion.
    pub fn insert(&mut self, id: u32) {
        assert!((id as usize) < self.data.len(), "point id out of bounds");
        // Mutation invalidates the flattened query view.
        self.flat = None;
        self.n += 1;
        match self.root {
            None => {
                self.root = Some(Box::new(Node::Leaf { points: vec![id] }));
                self.height = 1;
            }
            Some(_) => {
                // `reinserted[l]` = forced reinsertion already used at level
                // l during this top-level insertion (levels counted from the
                // leaves, 0 = leaf). Evicted entries are queued in `pending`
                // and reinserted once the tree is consistent again.
                let mut reinserted = vec![false; self.height];
                let mut pending: Vec<(InsertItem, usize)> = Vec::new();
                self.insert_at_level(InsertItem::Point(id), 0, &mut reinserted, &mut pending);
                while let Some((item, level)) = pending.pop() {
                    self.insert_at_level(item, level, &mut reinserted, &mut pending);
                }
            }
        }
    }

    /// Removes point `id` from the tree (the classic R-tree delete with
    /// CondenseTree: underfull nodes along the path are dissolved and their
    /// entries reinserted at their original level). Returns whether the
    /// point was found.
    pub fn delete(&mut self, id: u32) -> bool {
        // Mutation invalidates the flattened query view.
        self.flat = None;
        let Some(root) = self.root.take() else {
            return false;
        };
        let root_level = self.height - 1;
        let target = self.point_rect(id);
        let mut orphans: Vec<(InsertItem, usize)> = Vec::new();
        let (root, found) = self.delete_rec(root, root_level, id, &target, &mut orphans);
        let mut root = match root {
            Some(r) => r,
            None => {
                // The tree emptied out (possibly with orphans pending).
                self.height = 0;
                self.root = None;
                if orphans.is_empty() {
                    if found {
                        self.n -= 1;
                    }
                    return found;
                }
                // Rebuild from the orphans: seed with any single point.
                Box::new(Node::Leaf { points: vec![] })
            }
        };
        // Shrink the root while it is a chain of single-child inner nodes.
        loop {
            let shrink = match &*root {
                Node::Inner { children } if children.len() == 1 => true,
                Node::Leaf { .. } | Node::Inner { .. } => false,
            };
            if !shrink {
                break;
            }
            let Node::Inner { mut children } = *root else {
                unreachable!()
            };
            let (_, child) = children.pop().expect("one child");
            root = child;
            self.height -= 1;
        }
        // Handle the rebuilt-empty-root case.
        if root.len() == 0 {
            self.root = None;
            self.height = 0;
        } else {
            self.root = Some(root);
        }
        // Reinsert orphaned entries. Subtrees whose level no longer exists
        // (tree shrank) are decomposed into their children recursively.
        let mut reinserted = vec![true; self.height.max(1)];
        let mut pending = orphans;
        while let Some((item, level)) = pending.pop() {
            match item {
                InsertItem::Point(p) => {
                    if self.root.is_none() {
                        self.root = Some(Box::new(Node::Leaf { points: vec![p] }));
                        self.height = 1;
                        reinserted = vec![true];
                    } else {
                        while reinserted.len() < self.height {
                            reinserted.push(true);
                        }
                        self.insert_at_level(
                            InsertItem::Point(p),
                            0,
                            &mut reinserted,
                            &mut pending,
                        );
                    }
                }
                InsertItem::Subtree { rect, node } => {
                    if level + 1 >= self.height || self.root.is_none() {
                        // Cannot hang this subtree at its level; decompose.
                        match *node {
                            Node::Leaf { points } => {
                                for p in points {
                                    pending.push((InsertItem::Point(p), 0));
                                }
                            }
                            Node::Inner { children } => {
                                for (r, c) in children {
                                    pending.push((
                                        InsertItem::Subtree { rect: r, node: c },
                                        level - 1,
                                    ));
                                }
                            }
                        }
                        let _ = rect;
                    } else {
                        while reinserted.len() < self.height {
                            reinserted.push(true);
                        }
                        self.insert_at_level(
                            InsertItem::Subtree { rect, node },
                            level,
                            &mut reinserted,
                            &mut pending,
                        );
                    }
                }
            }
        }
        if found {
            self.n -= 1;
        }
        found
    }

    /// Recursive delete. Returns the (possibly dissolved) node and whether
    /// the point was removed in this subtree.
    fn delete_rec(
        &self,
        mut node: Box<Node>,
        level: usize,
        id: u32,
        target: &Rect,
        orphans: &mut Vec<(InsertItem, usize)>,
    ) -> (Option<Box<Node>>, bool) {
        match &mut *node {
            Node::Leaf { points } => {
                let before = points.len();
                points.retain(|&p| p != id);
                let found = points.len() < before;
                if points.is_empty() {
                    (None, found)
                } else {
                    (Some(node), found)
                }
            }
            Node::Inner { children } => {
                let mut found = false;
                let mut slots: Vec<Option<(Rect, Box<Node>)>> =
                    children.drain(..).map(Some).collect();
                for slot in slots.iter_mut() {
                    if found {
                        break;
                    }
                    let covers = slot
                        .as_ref()
                        .map(|(r, _)| r.contains_rect(target))
                        .unwrap_or(false);
                    if !covers {
                        continue;
                    }
                    let (_, child) = slot.take().expect("slot filled");
                    let (child, f) = self.delete_rec(child, level - 1, id, target, orphans);
                    found = f;
                    if let Some(c) = child {
                        // R-tree CondenseTree uses the insertion minimum;
                        // here a small floor (2) keeps the tree valid while
                        // avoiding cascading dissolution storms.
                        let min_fill = 2;
                        if f && c.len() < min_fill {
                            // Underfull: dissolve into orphans.
                            match *c {
                                Node::Leaf { points } => {
                                    for p in points {
                                        orphans.push((InsertItem::Point(p), 0));
                                    }
                                }
                                Node::Inner { children } => {
                                    // The dissolved child sat at level-1, so
                                    // its entries (subtrees rooted at
                                    // level-2) re-hang at level-1.
                                    for (r, n) in children {
                                        orphans.push((
                                            InsertItem::Subtree { rect: r, node: n },
                                            level - 1,
                                        ));
                                    }
                                }
                            }
                        } else {
                            *slot = Some((self.node_rect(&c), c));
                        }
                    }
                }
                children.extend(slots.into_iter().flatten());
                if children.is_empty() {
                    (None, found)
                } else {
                    (Some(node), found)
                }
            }
        }
    }

    fn point_rect(&self, id: u32) -> Rect {
        Rect::point(self.data.point(id))
    }

    fn item_rect(&self, item: &InsertItem) -> Rect {
        match item {
            InsertItem::Point(id) => self.point_rect(*id),
            InsertItem::Subtree { rect, .. } => rect.clone(),
        }
    }

    fn insert_at_level(
        &mut self,
        item: InsertItem,
        level: usize,
        reinserted: &mut Vec<bool>,
        pending: &mut Vec<(InsertItem, usize)>,
    ) {
        let rect = self.item_rect(&item);
        let root = self.root.take().expect("insert_at_level requires a root");
        let root_level = self.height - 1;
        let (root, split) =
            self.insert_rec(root, root_level, item, &rect, level, reinserted, pending);
        if let Some((r1, n1, r2, n2)) = split {
            // Root split: grow the tree.
            let _ = root; // consumed by the split
            self.root = Some(Box::new(Node::Inner {
                children: vec![(r1, n1), (r2, n2)],
            }));
            self.height += 1;
            reinserted.push(true); // new root level cannot reinsert
        } else {
            self.root = Some(root);
        }
    }

    /// Recursive insertion. Returns the (possibly modified) node and, if the
    /// node was split, the two replacement halves (in which case the
    /// returned node must be discarded by the caller).
    #[allow(clippy::type_complexity)]
    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &mut self,
        mut node: Box<Node>,
        node_level: usize,
        item: InsertItem,
        rect: &Rect,
        target_level: usize,
        reinserted: &mut [bool],
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> (Box<Node>, Option<(Rect, Box<Node>, Rect, Box<Node>)>) {
        if node_level == target_level {
            match (&mut *node, item) {
                (Node::Leaf { points }, InsertItem::Point(id)) => points.push(id),
                (Node::Inner { children }, InsertItem::Subtree { rect, node }) => {
                    children.push((rect, node))
                }
                _ => unreachable!("item kind matches node kind at its level"),
            }
        } else {
            let Node::Inner { children } = &mut *node else {
                unreachable!("non-target levels are inner nodes")
            };
            let child_idx = choose_subtree(self.data, children, rect, node_level == 1);
            let (child_rect, child_node) = children.swap_remove(child_idx);
            let _ = child_rect;
            let (child_node, split) = self.insert_rec(
                child_node,
                node_level - 1,
                item,
                rect,
                target_level,
                reinserted,
                pending,
            );
            match split {
                None => {
                    let new_rect = self.node_rect(&child_node);
                    children.push((new_rect, child_node));
                }
                Some((r1, n1, r2, n2)) => {
                    drop(child_node);
                    children.push((r1, n1));
                    children.push((r2, n2));
                }
            }
        }

        if node.len() > MAX_ENTRIES {
            self.overflow(node, node_level, reinserted, pending)
        } else {
            (node, None)
        }
    }

    /// R* OverflowTreatment: forced reinsert on the first overflow at a
    /// non-root level, split otherwise.
    #[allow(clippy::type_complexity)]
    fn overflow(
        &mut self,
        node: Box<Node>,
        level: usize,
        reinserted: &mut [bool],
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> (Box<Node>, Option<(Rect, Box<Node>, Rect, Box<Node>)>) {
        let is_root_level = level == self.height - 1;
        if !is_root_level && !reinserted[level] {
            reinserted[level] = true;
            let node = self.forced_reinsert(node, level, pending);
            (node, None)
        } else {
            let (r1, n1, r2, n2) = self.split_node(*node);
            // Callers replace the node with the two halves; hand back a
            // dummy leaf that is immediately discarded.
            (
                Box::new(Node::Leaf { points: vec![] }),
                Some((r1, n1, r2, n2)),
            )
        }
    }

    /// Removes the `REINSERT_COUNT` entries whose centers are farthest from
    /// the node's bbox center and queues them for reinsertion ("close
    /// reinsert": the queue is drained nearest-first), possibly landing them
    /// in different nodes.
    fn forced_reinsert(
        &mut self,
        mut node: Box<Node>,
        level: usize,
        pending: &mut Vec<(InsertItem, usize)>,
    ) -> Box<Node> {
        let center = self.node_rect(&node).center();
        let evicted: Vec<InsertItem> = match &mut *node {
            Node::Leaf { points } => {
                let mut by_dist: Vec<(F64, usize)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (F64(self.metric.dist(&center, self.data.point(id))), i))
                    .collect();
                by_dist.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
                let mut evict_pos: Vec<usize> = by_dist
                    .iter()
                    .take(REINSERT_COUNT)
                    .map(|&(_, i)| i)
                    .collect();
                evict_pos.sort_unstable_by(|a, b| b.cmp(a));
                evict_pos
                    .into_iter()
                    .map(|i| InsertItem::Point(points.swap_remove(i)))
                    .collect()
            }
            Node::Inner { children } => {
                let mut by_dist: Vec<(F64, usize)> = children
                    .iter()
                    .enumerate()
                    .map(|(i, (r, _))| (F64(self.metric.dist(&center, &r.center())), i))
                    .collect();
                by_dist.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
                let mut evict_pos: Vec<usize> = by_dist
                    .iter()
                    .take(REINSERT_COUNT)
                    .map(|&(_, i)| i)
                    .collect();
                evict_pos.sort_unstable_by(|a, b| b.cmp(a));
                evict_pos
                    .into_iter()
                    .map(|i| {
                        let (rect, child) = children.swap_remove(i);
                        InsertItem::Subtree { rect, node: child }
                    })
                    .collect()
            }
        };
        // Close reinsert: the pending queue is drained with pop() (LIFO), so
        // sorting farthest-first makes the nearest entry re-enter first.
        let mut evicted: Vec<(F64, InsertItem)> = evicted
            .into_iter()
            .map(|it| {
                let c = self.item_rect(&it).center();
                (F64(self.metric.dist(&center, &c)), it)
            })
            .collect();
        evicted.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
        // Reinsertion must not run while this node is detached from the tree
        // (the caller's stack still owns it), so the evicted entries are
        // queued and re-inserted by the top-level `insert` once the descent
        // has unwound and the tree is consistent.
        pending.extend(evicted.into_iter().map(|(d, it)| {
            let _ = d;
            (it, level)
        }));
        node
    }

    fn node_rect(&self, node: &Node) -> Rect {
        match node {
            Node::Leaf { points } => Rect::bounding(points.iter().map(|&i| self.data.point(i)))
                .expect("nodes are non-empty"),
            Node::Inner { children } => children
                .iter()
                .map(|(r, _)| r)
                .fold(None::<Rect>, |acc, r| {
                    Some(acc.map_or_else(|| r.clone(), |a| a.union(r)))
                })
                .expect("nodes are non-empty"),
        }
    }

    /// R* topological split. Consumes the overflowing node and returns the
    /// two halves with their rectangles.
    fn split_node(&self, node: Node) -> (Rect, Box<Node>, Rect, Box<Node>) {
        match node {
            Node::Leaf { points } => {
                let rects: Vec<Rect> = points.iter().map(|&i| self.point_rect(i)).collect();
                let (first, second) = split_entries(&rects);
                let a: Vec<u32> = first.iter().map(|&i| points[i]).collect();
                let b: Vec<u32> = second.iter().map(|&i| points[i]).collect();
                let ra = Rect::bounding(a.iter().map(|&i| self.data.point(i))).unwrap();
                let rb = Rect::bounding(b.iter().map(|&i| self.data.point(i))).unwrap();
                (
                    ra,
                    Box::new(Node::Leaf { points: a }),
                    rb,
                    Box::new(Node::Leaf { points: b }),
                )
            }
            Node::Inner { children } => {
                let rects: Vec<Rect> = children.iter().map(|(r, _)| r.clone()).collect();
                let (first, second) = split_entries(&rects);
                let mut slots: Vec<Option<(Rect, Box<Node>)>> =
                    children.into_iter().map(Some).collect();
                let take = |idxs: &[usize], slots: &mut Vec<Option<(Rect, Box<Node>)>>| {
                    idxs.iter()
                        .map(|&i| slots[i].take().expect("split indices unique"))
                        .collect::<Vec<_>>()
                };
                let a = take(&first, &mut slots);
                let b = take(&second, &mut slots);
                let rect_of = |v: &[(Rect, Box<Node>)]| {
                    v.iter()
                        .map(|(r, _)| r)
                        .fold(None::<Rect>, |acc, r| {
                            Some(acc.map_or_else(|| r.clone(), |x| x.union(r)))
                        })
                        .unwrap()
                };
                let (ra, rb) = (rect_of(&a), rect_of(&b));
                (
                    ra,
                    Box::new(Node::Inner { children: a }),
                    rb,
                    Box::new(Node::Inner { children: b }),
                )
            }
        }
    }

    /// Validates tree invariants (entry counts, bbox containment, height);
    /// test/diagnostic helper. Returns the number of points found.
    pub fn validate(&self) -> usize {
        fn walk<M: Metric>(
            tree: &RStarTree<'_, M>,
            node: &Node,
            rect: Option<&Rect>,
            level: usize,
            is_root: bool,
        ) -> usize {
            if !is_root {
                assert!(
                    node.len() >= MIN_ENTRIES.min(2) || node.len() >= 1,
                    "underfull node"
                );
            }
            assert!(node.len() <= MAX_ENTRIES, "overfull node: {}", node.len());
            match node {
                Node::Leaf { points } => {
                    assert_eq!(level, 0, "leaves must be at level 0");
                    if let Some(r) = rect {
                        for &p in points {
                            assert!(
                                r.contains_point(tree.data.point(p)),
                                "leaf bbox does not contain point {p}"
                            );
                        }
                    }
                    points.len()
                }
                Node::Inner { children } => {
                    let mut total = 0;
                    for (r, child) in children {
                        if let Some(parent) = rect {
                            assert!(parent.contains_rect(r), "child rect escapes parent rect");
                        }
                        let recomputed = tree.node_rect(child);
                        assert!(
                            r.contains_rect(&recomputed) && recomputed.contains_rect(r),
                            "stored child rect differs from recomputed"
                        );
                        total += walk(tree, child, Some(r), level - 1, false);
                    }
                    total
                }
            }
        }
        match &self.root {
            None => 0,
            Some(root) => walk(self, root, None, self.height - 1, true),
        }
    }

    /// Tree height (1 = root is a leaf, 0 = empty); diagnostic.
    pub fn tree_height(&self) -> usize {
        self.height
    }
}

/// Items that can be (re)inserted: raw points or whole orphaned subtrees.
#[derive(Debug)]
enum InsertItem {
    Point(u32),
    Subtree { rect: Rect, node: Box<Node> },
}

/// R* ChooseSubtree: at the level above the leaves pick minimum overlap
/// enlargement; above that, minimum area enlargement. Ties fall through to
/// area enlargement then area.
fn choose_subtree(
    _data: &Dataset,
    children: &[(Rect, Box<Node>)],
    rect: &Rect,
    children_are_leaves: bool,
) -> usize {
    debug_assert!(!children.is_empty());
    if children_are_leaves {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, (r, _)) in children.iter().enumerate() {
            let grown = r.union(rect);
            let mut overlap_delta = 0.0;
            for (j, (other, _)) in children.iter().enumerate() {
                if i != j {
                    overlap_delta += grown.overlap(other) - r.overlap(other);
                }
            }
            let key = (overlap_delta, r.enlargement(rect), r.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, (r, _)) in children.iter().enumerate() {
            let key = (r.enlargement(rect), r.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// R* topological split of a set of entry rectangles. Returns the entry
/// indices of the two groups.
fn split_entries(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
    let dim = rects[0].dim();
    let total = rects.len();
    debug_assert!(total > MAX_ENTRIES);
    let k_range = MIN_ENTRIES..=(total - MIN_ENTRIES);

    // ChooseSplitAxis: minimize the sum of margins over all distributions,
    // considering entries sorted by lower then by upper bound per axis.
    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_orders: Option<[Vec<usize>; 2]> = None;
    for axis in 0..dim {
        let mut by_lo: Vec<usize> = (0..total).collect();
        by_lo.sort_by(|&a, &b| {
            rects[a].lo()[axis]
                .total_cmp(&rects[b].lo()[axis])
                .then(rects[a].hi()[axis].total_cmp(&rects[b].hi()[axis]))
        });
        let mut by_hi: Vec<usize> = (0..total).collect();
        by_hi.sort_by(|&a, &b| {
            rects[a].hi()[axis]
                .total_cmp(&rects[b].hi()[axis])
                .then(rects[a].lo()[axis].total_cmp(&rects[b].lo()[axis]))
        });
        let mut margin_sum = 0.0;
        for order in [&by_lo, &by_hi] {
            for k in k_range.clone() {
                let r1 = bound_of(rects, &order[..k]);
                let r2 = bound_of(rects, &order[k..]);
                margin_sum += r1.margin() + r2.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
            best_axis_orders = Some([by_lo, by_hi]);
        }
    }
    let _ = best_axis;
    let orders = best_axis_orders.expect("at least one axis");

    // ChooseSplitIndex: minimize overlap, ties by combined area.
    let mut best: Option<(f64, f64, Vec<usize>, Vec<usize>)> = None;
    for order in &orders {
        for k in k_range.clone() {
            let g1: Vec<usize> = order[..k].to_vec();
            let g2: Vec<usize> = order[k..].to_vec();
            let r1 = bound_of(rects, &g1);
            let r2 = bound_of(rects, &g2);
            let overlap = r1.overlap(&r2);
            let area = r1.area() + r2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, g1, g2));
            }
        }
    }
    let (_, _, g1, g2) = best.expect("at least one distribution");
    (g1, g2)
}

fn bound_of(rects: &[Rect], idxs: &[usize]) -> Rect {
    let mut it = idxs.iter();
    let first = *it.next().expect("group is non-empty");
    let mut acc = rects[first].clone();
    for &i in it {
        acc.expand_to_rect(&rects[i]);
    }
    acc
}

/// Recursive STR tiling: partitions `ids` (point indices into `data`) into
/// chunks of at most [`STR_FILL`] and calls `emit` for each.
fn str_tile(data: &Dataset, ids: &mut [u32], axis: usize, emit: &mut impl FnMut(&[u32])) {
    if ids.len() <= STR_FILL {
        if !ids.is_empty() {
            emit(ids);
        }
        return;
    }
    let dim = data.dim();
    if axis + 1 == dim {
        // Last axis: sort and cut into runs.
        ids.sort_by(|&a, &b| data.point(a)[axis].total_cmp(&data.point(b)[axis]));
        for chunk in ids.chunks(STR_FILL) {
            emit(chunk);
        }
        return;
    }
    // Number of slabs along this axis: ceil((n / fill)^(1/remaining_axes)).
    let n_nodes = ids.len().div_ceil(STR_FILL);
    let remaining = (dim - axis) as f64;
    let slabs = (n_nodes as f64).powf(1.0 / remaining).ceil() as usize;
    let slabs = slabs.max(1);
    let per_slab = ids.len().div_ceil(slabs);
    ids.sort_by(|&a, &b| data.point(a)[axis].total_cmp(&data.point(b)[axis]));
    let mut rest = ids;
    while !rest.is_empty() {
        let take = per_slab.min(rest.len());
        let (slab, tail) = rest.split_at_mut(take);
        str_tile(data, slab, axis + 1, emit);
        rest = tail;
    }
}

impl<M: Metric> RStarTree<'_, M> {
    /// Returns `(distance_evals, nodes_visited)` for this subtree; a
    /// node counts as visited when the search descends into it.
    fn range_rec(&self, node: &Node, q: &[f64], eps: f64, out: &mut Vec<u32>) -> (u64, u64) {
        match node {
            Node::Leaf { points } => {
                let bound = self.metric.to_surrogate(eps);
                for &i in points {
                    if self.metric.surrogate(q, self.data.point(i)) <= bound {
                        out.push(i);
                    }
                }
                (points.len() as u64, 1)
            }
            Node::Inner { children } => {
                let mut evals = 0u64;
                let mut visits = 1u64;
                for (rect, child) in children {
                    if dist_to_box(&self.metric, q, rect.lo(), rect.hi()) <= eps {
                        let (e, v) = self.range_rec(child, q, eps, out);
                        evals += e;
                        visits += v;
                    }
                }
                (evals, visits)
            }
        }
    }
}

impl<M: Metric> NeighborIndex for RStarTree<'_, M> {
    fn len(&self) -> usize {
        self.n
    }

    fn range(&self, q: &[f64], eps: f64, out: &mut Vec<u32>) {
        with_scratch(|ws| self.range_with(q, eps, out, ws));
    }

    fn range_with(&self, q: &[f64], eps: f64, out: &mut Vec<u32>, ws: &mut QueryWorkspace) {
        out.clear();
        let mut evals = 0u64;
        let mut visits = 0u64;
        if let Some(flat) = &self.flat {
            let bound = self.metric.to_surrogate(eps);
            // Box pruning stays f64 in both precisions (bounds are
            // exact); only the leaf candidate test narrows.
            let q32 = match flat.precision {
                Precision::F32 => Some(QueryF32::new(q)),
                Precision::F64 => None,
            };
            ws.stack.clear();
            ws.stack.push(0);
            while let Some(n) = ws.stack.pop() {
                // A node counts as visited when the search descends
                // into it — only nodes whose rect passed the test (or
                // the root) are ever pushed, matching the recursion.
                visits += 1;
                match flat.nodes[n as usize] {
                    FlatRNode::Leaf { start, len, coords } => {
                        evals += len as u64;
                        let (start, len, coords) = (start as usize, len as usize, coords as usize);
                        match &q32 {
                            None => scan_block(
                                &self.metric,
                                q,
                                &flat.ids[start..start + len],
                                &flat.coords[coords..coords + flat.dim * len],
                                len,
                                bound,
                                out,
                            ),
                            Some(q32) => scan_block_f32(
                                &self.metric,
                                q32.as_slice(),
                                &flat.ids[start..start + len],
                                &flat.coords32[coords..coords + flat.dim * len],
                                len,
                                bound as f32,
                                out,
                            ),
                        }
                    }
                    FlatRNode::Inner { start, len } => {
                        // Children pushed in reverse so they pop — and
                        // their subtrees complete — in original order.
                        let kids = &flat.children[start as usize..(start + len) as usize];
                        for &c in kids.iter().rev() {
                            let (lo, hi) = flat.node_bounds(c);
                            if self.metric.surrogate_dist_to_box(q, lo, hi) <= bound {
                                ws.stack.push(c);
                            }
                        }
                    }
                }
            }
        } else if let Some(root) = &self.root {
            (evals, visits) = self.range_rec(root, q, eps, out);
        }
        if let Some(s) = &self.sheet {
            s.record_range(evals, visits);
        }
    }

    fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        // Best-first search over nodes and points.
        enum Item<'n> {
            Node(&'n Node),
            Point(u32),
        }
        struct HeapEntry<'n> {
            key: Reverse<(F64, usize)>,
            item: Item<'n>,
        }
        impl PartialEq for HeapEntry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl Eq for HeapEntry<'_> {}
        impl PartialOrd for HeapEntry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapEntry<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.key.cmp(&other.key)
            }
        }
        let mut frontier: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut tiebreak = 0usize;
        frontier.push(HeapEntry {
            key: Reverse((F64(0.0), tiebreak)),
            item: Item::Node(self.root.as_ref().unwrap()),
        });
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(k);
        let mut evals = 0u64;
        let mut visits = 0u64;
        while let Some(HeapEntry {
            key: Reverse((F64(d), _)),
            item,
        }) = frontier.pop()
        {
            if out.len() == k {
                break;
            }
            match item {
                Item::Point(i) => out.push((i, d)),
                Item::Node(Node::Leaf { points }) => {
                    visits += 1;
                    evals += points.len() as u64;
                    for &i in points {
                        tiebreak += 1;
                        let pd = self.metric.dist(q, self.data.point(i));
                        frontier.push(HeapEntry {
                            key: Reverse((F64(pd), tiebreak)),
                            item: Item::Point(i),
                        });
                    }
                }
                Item::Node(Node::Inner { children }) => {
                    visits += 1;
                    for (rect, child) in children {
                        tiebreak += 1;
                        let nd = dist_to_box(&self.metric, q, rect.lo(), rect.hi());
                        frontier.push(HeapEntry {
                            key: Reverse((F64(nd), tiebreak)),
                            item: Item::Node(child),
                        });
                    }
                }
            }
        }
        if let Some(s) = &self.sheet {
            s.record_knn(evals, visits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::{Euclidean, Manhattan};

    #[test]
    fn bulk_load_matches_linear() {
        let d = testutil::random_dataset(800, 21);
        let idx = RStarTree::bulk_load(&d, Euclidean);
        assert_eq!(idx.validate(), 800);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn bulk_load_manhattan() {
        let d = testutil::random_dataset(300, 22);
        let idx = RStarTree::bulk_load(&d, Manhattan);
        testutil::check_against_linear(&idx, &d, Manhattan);
    }

    #[test]
    fn flat_view_matches_recursive_range_exactly() {
        let d = testutil::random_dataset(600, 31);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        assert!(idx.flat.is_some(), "bulk load builds the flat view");
        let queries: Vec<u32> = (0..d.len() as u32).step_by(23).collect();
        let flat: Vec<Vec<u32>> = queries
            .iter()
            .flat_map(|&i| [1.0, 6.0, 30.0].map(|eps| idx.range_vec(d.point(i), eps)))
            .collect();
        idx.flat = None;
        let legacy: Vec<Vec<u32>> = queries
            .iter()
            .flat_map(|&i| [1.0, 6.0, 30.0].map(|eps| idx.range_vec(d.point(i), eps)))
            .collect();
        // Exact equality, order included: downstream scp selection is
        // visit-order dependent.
        assert_eq!(flat, legacy);
    }

    #[test]
    fn mutation_drops_flat_view_and_queries_stay_correct() {
        let d = testutil::random_dataset(400, 32);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        assert!(idx.flat.is_some());
        idx.delete(7);
        assert!(idx.flat.is_none(), "delete invalidates the flat view");
        idx.insert(7);
        assert!(idx.flat.is_none(), "insert invalidates the flat view");
        assert_eq!(idx.validate(), 400);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn dynamic_insert_matches_linear() {
        let d = testutil::random_dataset(600, 23);
        let mut idx = RStarTree::new(&d, Euclidean);
        for i in 0..d.len() as u32 {
            idx.insert(i);
        }
        assert_eq!(idx.validate(), 600);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn dynamic_insert_clustered_data() {
        // Tight clusters stress ChooseSubtree's overlap criterion and
        // forced reinsertion.
        let mut flat = Vec::new();
        for c in 0..6 {
            let (cx, cy) = (c as f64 * 10.0, (c % 3) as f64 * 10.0);
            for i in 0..60 {
                let t = i as f64 * 0.1;
                flat.extend_from_slice(&[cx + t.sin() * 0.8, cy + t.cos() * 0.8]);
            }
        }
        let d = Dataset::from_flat(2, flat);
        let mut idx = RStarTree::new(&d, Euclidean);
        for i in 0..d.len() as u32 {
            idx.insert(i);
        }
        assert_eq!(idx.validate(), 360);
        testutil::check_against_linear(&idx, &d, Euclidean);
    }

    #[test]
    fn height_grows_logarithmically() {
        let d = testutil::random_dataset(2000, 24);
        let idx = RStarTree::bulk_load(&d, Euclidean);
        assert!(idx.tree_height() <= 4, "height {}", idx.tree_height());
        let mut dynamic = RStarTree::new(&d, Euclidean);
        for i in 0..d.len() as u32 {
            dynamic.insert(i);
        }
        assert!(
            dynamic.tree_height() <= 6,
            "height {}",
            dynamic.tree_height()
        );
    }

    #[test]
    fn empty_and_tiny() {
        let empty = Dataset::new(2);
        let idx = RStarTree::bulk_load(&empty, Euclidean);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 10.0).is_empty());
        assert!(idx.knn(&[0.0, 0.0], 2).is_empty());

        let d = Dataset::from_flat(2, vec![1.0, 1.0, 2.0, 2.0]);
        let idx = RStarTree::bulk_load(&d, Euclidean);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.validate(), 2);
        let nn = idx.knn(&[0.0, 0.0], 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn duplicate_points() {
        let mut flat = Vec::new();
        for _ in 0..200 {
            flat.extend_from_slice(&[5.0, 5.0]);
        }
        let d = Dataset::from_flat(2, flat);
        let idx = RStarTree::bulk_load(&d, Euclidean);
        assert_eq!(idx.validate(), 200);
        assert_eq!(idx.range_vec(&[5.0, 5.0], 0.0).len(), 200);
        let mut dynamic = RStarTree::new(&d, Euclidean);
        for i in 0..200 {
            dynamic.insert(i);
        }
        assert_eq!(dynamic.validate(), 200);
        assert_eq!(dynamic.range_vec(&[5.0, 5.0], 0.0).len(), 200);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_rejects_bad_id() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0]);
        let mut idx = RStarTree::new(&d, Euclidean);
        idx.insert(5);
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use crate::testutil;
    use dbdc_geom::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn delete_then_query_matches_linear() {
        let d = testutil::random_dataset(500, 41);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        // Delete every third point.
        let mut live: Vec<u32> = Vec::new();
        for i in 0..d.len() as u32 {
            if i % 3 == 0 {
                assert!(idx.delete(i), "point {i} must be found");
            } else {
                live.push(i);
            }
        }
        assert_eq!(idx.len(), live.len());
        assert_eq!(idx.validate(), live.len());
        // Queries return exactly the live points a scan would.
        let mut out = Vec::new();
        for &q in live.iter().step_by(17) {
            idx.range(d.point(q), 8.0, &mut out);
            out.sort_unstable();
            let mut want: Vec<u32> = live
                .iter()
                .copied()
                .filter(|&p| Euclidean.dist(d.point(p), d.point(q)) <= 8.0)
                .collect();
            want.sort_unstable();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn delete_everything_empties_tree() {
        let d = testutil::random_dataset(200, 42);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        for i in 0..200u32 {
            assert!(idx.delete(i));
        }
        assert!(idx.is_empty());
        assert_eq!(idx.tree_height(), 0);
        assert!(idx.range_vec(&[0.0, 0.0], 1e9).is_empty());
        // And the tree is usable again afterwards.
        idx.insert(5);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.range_vec(d.point(5), 0.1), vec![5]);
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut flat = vec![0.0, 0.0, 1.0, 1.0, 50.0, 50.0];
        flat.extend_from_slice(&[2.0, 2.0]);
        let d = Dataset::from_flat(2, flat);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        assert!(idx.delete(1));
        assert!(!idx.delete(1), "second delete of same id fails");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn randomized_insert_delete_cycles() {
        let d = testutil::random_dataset(400, 43);
        let mut idx = RStarTree::new(&d, Euclidean);
        let mut rng = StdRng::seed_from_u64(43);
        let mut live: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for step in 0..800 {
            if next < 400 && (live.is_empty() || rng.random_range(0..100) < 60) {
                idx.insert(next);
                live.push(next);
                next += 1;
            } else {
                let victim = rng.random_range(0..live.len());
                let id = live.swap_remove(victim);
                assert!(idx.delete(id), "step {step}: delete {id}");
            }
            if step % 100 == 99 {
                assert_eq!(idx.validate(), live.len(), "step {step}");
            }
        }
        assert_eq!(idx.validate(), live.len());
        // Final cross-check against brute force.
        let mut out = Vec::new();
        idx.range(&[0.0, 0.0], 30.0, &mut out);
        out.sort_unstable();
        let mut want: Vec<u32> = live
            .iter()
            .copied()
            .filter(|&p| Euclidean.dist(d.point(p), &[0.0, 0.0]) <= 30.0)
            .collect();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn parallel_flatten_is_bit_identical() {
        let d = testutil::random_dataset(4000, 41);
        let seq = RStarTree::bulk_load(&d, Euclidean).arena_bits();
        assert!(!seq.is_empty());
        for threads in [2, 3, 8] {
            let par = RStarTree::bulk_load_threaded(&d, Euclidean, threads).arena_bits();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn f32_range_matches_oracle_away_from_boundary() {
        let d = testutil::random_dataset(800, 42);
        let oracle = RStarTree::bulk_load(&d, Euclidean);
        let narrow = RStarTree::bulk_load_opts(&d, Euclidean, 2, Precision::F32);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..d.len() as u32).step_by(11) {
            for eps in [0.5, 3.0, 20.0] {
                oracle.range(d.point(i), eps, &mut a);
                narrow.range(d.point(i), eps, &mut b);
                total += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        assert!(
            agree * 100 >= total * 99,
            "f32 agreement too low: {agree}/{total}"
        );
    }

    #[test]
    fn duplicate_coordinates_delete_one_at_a_time() {
        let mut flat = Vec::new();
        for _ in 0..50 {
            flat.extend_from_slice(&[3.0, 3.0]);
        }
        let d = Dataset::from_flat(2, flat);
        let mut idx = RStarTree::bulk_load(&d, Euclidean);
        for i in 0..50u32 {
            assert!(idx.delete(i), "delete {i}");
            assert_eq!(idx.len(), (49 - i) as usize);
        }
        assert!(idx.is_empty());
    }
}
