//! Vantage-point tree — a second metric-space access method.
//!
//! Where the M-tree is dynamic (the paper's choice, because sites ingest
//! data over time), the VP-tree is a static structure built by recursive
//! median partitioning of distances to a vantage point. It answers the same
//! ε-range and kNN queries over arbitrary metric objects and serves as an
//! independent cross-check for the M-tree in tests, and as the faster
//! backend when the object set is known up front.

use crate::linear::ordered::F64;
use dbdc_geom::metric::MetricSpace;
use std::collections::BinaryHeap;

const LEAF_SIZE: usize = 12;

enum VNode {
    Leaf {
        /// Object ids.
        ids: Vec<u32>,
    },
    Inner {
        /// The vantage object's id.
        vantage: u32,
        /// Median distance: the inside subtree holds objects with
        /// `d(vantage, o) <= mu`, the outside subtree the rest.
        mu: f64,
        inside: Box<VNode>,
        outside: Box<VNode>,
    },
}

/// A static vantage-point tree over owned objects.
pub struct VpTree<T, S> {
    space: S,
    objects: Vec<T>,
    root: Option<VNode>,
}

impl<T, S: MetricSpace<T>> VpTree<T, S> {
    /// Builds the tree over the given objects (ids are input positions).
    pub fn build(space: S, objects: Vec<T>) -> Self {
        let mut ids: Vec<u32> = (0..objects.len() as u32).collect();
        let root = if ids.is_empty() {
            None
        } else {
            Some(Self::build_rec(&space, &objects, &mut ids))
        };
        Self {
            space,
            objects,
            root,
        }
    }

    fn build_rec(space: &S, objects: &[T], ids: &mut [u32]) -> VNode {
        if ids.len() <= LEAF_SIZE {
            return VNode::Leaf { ids: ids.to_vec() };
        }
        // Vantage point: first id (any choice is correct; a random one
        // would balance adversarial inputs, but the datasets here are
        // pre-shuffled).
        let vantage = ids[0];
        let rest = &mut ids[1..];
        let mid = rest.len() / 2;
        rest.select_nth_unstable_by(mid, |&a, &b| {
            let da = space.dist(&objects[vantage as usize], &objects[a as usize]);
            let db = space.dist(&objects[vantage as usize], &objects[b as usize]);
            da.total_cmp(&db)
        });
        let mu = space.dist(&objects[vantage as usize], &objects[rest[mid] as usize]);
        let (inside_ids, outside_ids) = rest.split_at_mut(mid + 1);
        let inside = Box::new(Self::build_rec(space, objects, inside_ids));
        let outside = if outside_ids.is_empty() {
            Box::new(VNode::Leaf { ids: vec![] })
        } else {
            Box::new(Self::build_rec(space, objects, outside_ids))
        };
        VNode::Inner {
            vantage,
            mu,
            inside,
            outside,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object with id `id`.
    pub fn object(&self, id: u32) -> &T {
        &self.objects[id as usize]
    }

    /// All ids within distance `eps` (inclusive) of `query`.
    pub fn range(&self, query: &T, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.range_rec(root, query, eps, &mut out);
        }
        out
    }

    fn range_rec(&self, node: &VNode, query: &T, eps: f64, out: &mut Vec<u32>) {
        match node {
            VNode::Leaf { ids } => {
                for &i in ids {
                    if self.space.dist(query, &self.objects[i as usize]) <= eps {
                        out.push(i);
                    }
                }
            }
            VNode::Inner {
                vantage,
                mu,
                inside,
                outside,
            } => {
                let d = self.space.dist(query, &self.objects[*vantage as usize]);
                if d <= eps {
                    out.push(*vantage);
                }
                // Triangle inequality pruning on both halves. The outside
                // half holds objects with d(vantage, o) >= mu (ties straddle
                // the median), so its test must be closed.
                if d - eps <= *mu {
                    self.range_rec(inside, query, eps, out);
                }
                if d + eps >= *mu {
                    self.range_rec(outside, query, eps, out);
                }
            }
        }
    }

    /// The `k` nearest objects to `query`, ascending by distance.
    pub fn knn(&self, query: &T, k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        // Max-heap of the best k (distance, id).
        let mut best: BinaryHeap<(F64, u32)> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root.as_ref().expect("checked"), query, k, &mut best);
        let mut out: Vec<(u32, f64)> = best.into_iter().map(|(d, i)| (i, d.0)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn knn_rec(&self, node: &VNode, query: &T, k: usize, best: &mut BinaryHeap<(F64, u32)>) {
        let offer = |d: f64, i: u32, best: &mut BinaryHeap<(F64, u32)>| {
            if best.len() < k {
                best.push((F64(d), i));
            } else if let Some(&(w, _)) = best.peek() {
                if d < w.0 {
                    best.pop();
                    best.push((F64(d), i));
                }
            }
        };
        match node {
            VNode::Leaf { ids } => {
                for &i in ids {
                    let d = self.space.dist(query, &self.objects[i as usize]);
                    offer(d, i, best);
                }
            }
            VNode::Inner {
                vantage,
                mu,
                inside,
                outside,
            } => {
                let d = self.space.dist(query, &self.objects[*vantage as usize]);
                offer(d, *vantage, best);
                let tau = |best: &BinaryHeap<(F64, u32)>| {
                    if best.len() == k {
                        best.peek().map(|&(w, _)| w.0).unwrap_or(f64::INFINITY)
                    } else {
                        f64::INFINITY
                    }
                };
                // Search the owning half first, then the other half only if
                // the (tightened) search radius still reaches across mu.
                let (first, second) = if d <= *mu {
                    (inside, outside)
                } else {
                    (outside, inside)
                };
                self.knn_rec(first, query, k, best);
                let need_second = if d <= *mu {
                    d + tau(best) >= *mu
                } else {
                    d - tau(best) <= *mu
                };
                if need_second {
                    self.knn_rec(second, query, k, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbdc_geom::metric::{EditDistance, VectorSpace};
    use dbdc_geom::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)])
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let objs = random_vectors(600, 71);
        let tree = VpTree::build(VectorSpace(Euclidean), objs.clone());
        assert_eq!(tree.len(), 600);
        let vs = VectorSpace(Euclidean);
        for q in objs.iter().step_by(53) {
            for eps in [0.5, 4.0, 15.0, 60.0] {
                let mut got = tree.range(q, eps);
                got.sort_unstable();
                let want: Vec<u32> = objs
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| MetricSpace::<Vec<f64>>::dist(&vs, q, o) <= eps)
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "eps {eps}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let objs = random_vectors(400, 72);
        let tree = VpTree::build(VectorSpace(Euclidean), objs.clone());
        let vs = VectorSpace(Euclidean);
        for q in objs.iter().step_by(37) {
            for k in [1usize, 4, 17] {
                let got = tree.knn(q, k);
                assert_eq!(got.len(), k);
                let mut want: Vec<f64> = objs
                    .iter()
                    .map(|o| MetricSpace::<Vec<f64>>::dist(&vs, q, o))
                    .collect();
                want.sort_by(f64::total_cmp);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.1 - w).abs() < 1e-9, "k {k}: {} vs {w}", g.1);
                }
            }
        }
    }

    #[test]
    fn agrees_with_mtree() {
        let objs = random_vectors(300, 73);
        let vp = VpTree::build(VectorSpace(Euclidean), objs.clone());
        let mt = crate::MTree::from_objects(VectorSpace(Euclidean), objs.clone());
        for q in objs.iter().step_by(29) {
            let mut a = vp.range(q, 10.0);
            let mut b = mt.range(q, 10.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> = ["grape", "graph", "grasp", "gripe", "tape", "xylem"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tree = VpTree::build(EditDistance, words);
        let hits = tree.range(&"grape".to_string(), 1.0);
        let found: Vec<&str> = hits.iter().map(|&i| tree.object(i).as_str()).collect();
        assert!(found.contains(&"grape"));
        assert!(found.contains(&"graph") || found.contains(&"gripe"));
        assert!(!found.contains(&"xylem"));
    }

    #[test]
    fn empty_and_tiny() {
        let tree: VpTree<Vec<f64>, _> = VpTree::build(VectorSpace(Euclidean), vec![]);
        assert!(tree.is_empty());
        assert!(tree.range(&vec![0.0, 0.0], 5.0).is_empty());
        assert!(tree.knn(&vec![0.0, 0.0], 2).is_empty());

        let tree = VpTree::build(VectorSpace(Euclidean), vec![vec![1.0, 1.0]]);
        assert_eq!(tree.range(&vec![0.0, 0.0], 2.0), vec![0]);
        assert_eq!(tree.knn(&vec![0.0, 0.0], 3).len(), 1);
    }

    #[test]
    fn duplicates() {
        let objs: Vec<Vec<f64>> = (0..100).map(|_| vec![7.0, 7.0]).collect();
        let tree = VpTree::build(VectorSpace(Euclidean), objs);
        assert_eq!(tree.range(&vec![7.0, 7.0], 0.0).len(), 100);
    }
}
