//! The paper's qualitative claims, encoded as tests. Each test names the
//! section or figure it checks.

use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};
use dbdc_cluster::{dbscan_with_scp, DbscanParams};
use dbdc_datagen::{dataset_a, scaled_a};
use dbdc_geom::Euclidean;
use dbdc_index::build_index;

/// Section 5 / Figure 10: the transmitted representatives are a small
/// fraction of the data ("the number of transmitted representatives is much
/// smaller than the cardinality of the complete data set"; the paper's
/// table reports 16-17%).
#[test]
fn representatives_are_a_small_fraction() {
    let g = dataset_a(21);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 2 }, 4);
    let frac = outcome.representative_fraction();
    assert!(
        (0.01..0.30).contains(&frac),
        "representative fraction {frac:.3} outside the plausible band"
    );
}

/// Section 9.2 / Figure 9: Eps_global = 2·Eps_local is a sweet spot — it
/// must not be worse than both a too-small and a too-large setting.
#[test]
fn two_times_eps_local_is_a_sweet_spot() {
    let g = scaled_a(4_000, 23);
    let base = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let (central, _) = central_dbscan(&g.data, &base);
    let q_at = |mult: f64| {
        let params = base.with_eps_global(EpsGlobal::MultipleOfLocal(mult));
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 23 }, 4);
        q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII).q
    };
    let tiny = q_at(0.5);
    let two = q_at(2.0);
    let huge = q_at(12.0);
    assert!(
        two + 1e-9 >= tiny.max(huge),
        "q(2x)={two:.3} vs q(0.5x)={tiny:.3}, q(12x)={huge:.3}"
    );
}

/// Section 9.2: "the quality according to P^I ... does not change if we
/// vary the Eps_global parameter" while P^II does discriminate — P^I's
/// spread across multipliers must be (much) smaller than P^II's.
#[test]
fn p1_is_flatter_than_p2_across_eps_global() {
    let g = scaled_a(3_000, 29);
    let base = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let (central, _) = central_dbscan(&g.data, &base);
    let mut p1s = Vec::new();
    let mut p2s = Vec::new();
    for mult in [1.0, 2.0, 6.0, 12.0] {
        let params = base.with_eps_global(EpsGlobal::MultipleOfLocal(mult));
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 29 }, 4);
        p1s.push(
            q_dbdc(
                &outcome.assignment,
                &central.clustering,
                ObjectQuality::PI {
                    qp: g.suggested_min_pts,
                },
            )
            .q,
        );
        p2s.push(q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII).q);
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(&p1s) <= spread(&p2s) + 1e-9,
        "P^I spread {:.4} vs P^II spread {:.4} (P^I: {p1s:?}, P^II: {p2s:?})",
        spread(&p1s),
        spread(&p2s)
    );
}

/// Section 9.1 / Figure 7a: for large data sets DBDC beats central
/// clustering; the advantage grows with cardinality.
#[test]
fn dbdc_outruns_central_on_large_data() {
    let g = scaled_a(30_000, 31);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let (_, central_time) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 31 }, 8);
    let dbdc_time = outcome.timings.dbdc_total();
    assert!(
        dbdc_time < central_time,
        "DBDC {dbdc_time:?} not faster than central {central_time:?} at 30k points"
    );
}

/// Definition 6/7 and Section 7: every locally clustered object lies within
/// the specific ε-range of a representative of its own cluster — the
/// coverage guarantee the relabeling step builds on. Exercised at pipeline
/// scale (the unit tests cover it on small data).
#[test]
fn scor_coverage_guarantee_at_scale() {
    use dbdc_geom::Metric;
    let g = scaled_a(5_000, 37);
    let params = DbscanParams::new(g.suggested_eps, g.suggested_min_pts);
    let idx = build_index(dbdc_index::IndexKind::RStar, &g.data, Euclidean, params.eps);
    let scp = dbscan_with_scp(&g.data, idx.as_ref(), &params);
    for i in 0..g.data.len() as u32 {
        if let Some(c) = scp.dbscan.clustering.label(i).cluster() {
            let covered = scp.scp[c as usize].iter().any(|s| {
                Euclidean.dist(g.data.point(s.point), g.data.point(i)) <= s.eps_range + 1e-9
            });
            assert!(covered, "object {i} escapes its cluster's ε-ranges");
        }
    }
}

/// Section 5.2: REP_kMeans produces exactly as many representatives per
/// cluster as REP_Scor.
#[test]
fn kmeans_and_scor_representative_counts_match() {
    let g = scaled_a(3_000, 41);
    let base = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let scor = run_dbdc(
        &g.data,
        &base.with_model(LocalModelKind::Scor),
        Partitioner::RandomEqual { seed: 41 },
        4,
    );
    let kmeans = run_dbdc(
        &g.data,
        &base.with_model(LocalModelKind::KMeans),
        Partitioner::RandomEqual { seed: 41 },
        4,
    );
    assert_eq!(scor.n_representatives, kmeans.n_representatives);
}

/// Abstract: "we do not have to sacrifice clustering quality in order to
/// gain an efficiency advantage" — at moderate scale, both must hold at
/// once against the same central reference.
#[test]
fn efficiency_without_quality_sacrifice() {
    let g = scaled_a(20_000, 43);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, central_time) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 43 }, 8);
    let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    assert!(q.q > 0.9, "quality {:.3}", q.q);
    assert!(
        outcome.timings.dbdc_total() < central_time,
        "no efficiency advantage at 20k points"
    );
}
