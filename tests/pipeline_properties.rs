//! Property-based integration tests over the whole pipeline: random mixture
//! specifications, site counts and seeds; invariants that must hold for
//! every configuration.

use dbdc::{q_dbdc, run_dbdc, wire, DbdcParams, EpsGlobal, ObjectQuality, Partitioner};
use dbdc_datagen::{ClusterSpec, MixtureSpec, Profile};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = MixtureSpec> {
    let cluster = (
        (5.0..95.0f64, 5.0..95.0f64),
        (1.5..5.0f64, 1.5..5.0f64),
        0.0..std::f64::consts::PI,
        50..300usize,
        prop::bool::ANY,
    )
        .prop_map(|(center, radii, angle, n, gaussian)| ClusterSpec {
            center: [center.0, center.1],
            radii: [radii.0, radii.1],
            angle,
            n,
            profile: if gaussian {
                Profile::Gaussian
            } else {
                Profile::Uniform
            },
        });
    (prop::collection::vec(cluster, 1..5), 0..120usize).prop_map(|(clusters, noise)| MixtureSpec {
        clusters,
        noise,
        bounds: [[0.0, 100.0], [0.0, 100.0]],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed assignment always covers every point, the byte
    /// accounting is consistent, and the quality measures stay in range.
    #[test]
    fn pipeline_invariants(spec in arb_spec(), sites in 1usize..9, seed in 0u64..1000) {
        let g = spec.generate(seed);
        let params = DbdcParams::new(1.2, 5)
            .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed }, sites);

        // Assignment covers all points.
        prop_assert_eq!(outcome.assignment.len(), g.data.len());
        prop_assert_eq!(outcome.site_sizes.iter().sum::<usize>(), g.data.len());

        // Byte accounting: up = sum of encoded local models > 0 when reps
        // exist; down = per-site broadcast of the same global model.
        if outcome.n_representatives > 0 {
            prop_assert!(outcome.bytes_up > 0);
        }
        prop_assert_eq!(outcome.bytes_down % sites.max(1), 0);

        // Wire round trip of the produced global model.
        let encoded = wire::encode_global_model(&outcome.global).unwrap();
        let decoded = wire::decode_global_model(&encoded).unwrap();
        prop_assert_eq!(&decoded, &outcome.global);

        // Quality against an arbitrary reference stays in [0, 1].
        let q = q_dbdc(&outcome.assignment, &g.truth, ObjectQuality::PII);
        prop_assert!((0.0..=1.0).contains(&q.q));

        // Global cluster count consistency: assignment ids are dense and at
        // most the number of global clusters.
        prop_assert!(outcome.assignment.n_clusters() <= outcome.global.n_clusters);
    }

    /// Partitioners must preserve every point exactly once, whatever the
    /// data.
    #[test]
    fn partitioners_are_total(spec in arb_spec(), sites in 1usize..12, seed in 0u64..100) {
        let g = spec.generate(seed);
        for part in [
            Partitioner::RandomEqual { seed },
            Partitioner::RoundRobin,
            Partitioner::SpatialStripes { axis: (seed % 2) as usize },
        ] {
            let assignment = part.assign(&g.data, sites);
            prop_assert_eq!(assignment.len(), g.data.len());
            prop_assert!(assignment.iter().all(|&s| s < sites));
        }
    }

    /// Quality of the distributed clustering against itself is always 1.
    #[test]
    fn self_quality_is_perfect(spec in arb_spec(), seed in 0u64..100) {
        let g = spec.generate(seed);
        let params = DbdcParams::new(1.2, 5);
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed }, 3);
        let q = q_dbdc(&outcome.assignment, &outcome.assignment, ObjectQuality::PII);
        prop_assert_eq!(q.q, 1.0);
    }
}
