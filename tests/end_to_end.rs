//! End-to-end integration tests: the full DBDC protocol over the paper's
//! three data sets, both local models, sequential and threaded runtimes.

use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, run_dbdc_threaded, DbdcParams, EpsGlobal, LocalModelKind,
    ObjectQuality, Partitioner,
};
use dbdc_datagen::{dataset_b, dataset_c, scaled_a};

fn params_for(g: &dbdc_datagen::GeneratedData) -> DbdcParams {
    DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
}

#[test]
fn dataset_c_both_models_high_quality() {
    let g = dataset_c(11);
    let params = params_for(&g);
    let (central, _) = central_dbscan(&g.data, &params);
    for model in [LocalModelKind::Scor, LocalModelKind::KMeans] {
        let outcome = run_dbdc(
            &g.data,
            &params.with_model(model),
            Partitioner::RandomEqual { seed: 3 },
            4,
        );
        let q2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
        assert!(
            q2.q > 0.95,
            "{}: P^II = {:.3} below the paper's ballpark",
            model.name(),
            q2.q
        );
        assert_eq!(
            outcome.assignment.n_clusters(),
            central.clustering.n_clusters()
        );
    }
}

#[test]
fn dataset_b_noise_is_preserved() {
    // Data set B is ~35% noise; the distributed clustering must keep the
    // bulk of it as noise rather than absorbing it into clusters.
    let g = dataset_b(11);
    let params = params_for(&g);
    let (central, _) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 3 }, 4);
    let central_noise = central.clustering.n_noise() as f64;
    let distr_noise = outcome.assignment.n_noise() as f64;
    assert!(
        (distr_noise - central_noise).abs() / central_noise < 0.25,
        "noise count diverges: central {central_noise}, distributed {distr_noise}"
    );
    let q2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    assert!(q2.q > 0.85, "P^II = {:.3}", q2.q);
}

#[test]
fn scaled_dataset_quality_and_transmission() {
    let g = scaled_a(6_000, 5);
    let params = params_for(&g);
    let (central, _) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 5 }, 6);
    let q2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    assert!(q2.q > 0.9, "P^II = {:.3}", q2.q);
    // Transmission stays a small fraction of the raw data.
    let raw = dbdc::wire::raw_data_bytes(g.data.len(), 2);
    assert!(outcome.bytes_up * 3 < raw);
}

#[test]
fn threaded_and_sequential_agree_on_all_datasets() {
    for (name, g) in [
        ("B", dataset_b(2)),
        ("C", dataset_c(2)),
        ("A6k", scaled_a(6_000, 2)),
    ] {
        let params = params_for(&g);
        let seq = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 8 }, 5);
        let thr = run_dbdc_threaded(&g.data, &params, Partitioner::RandomEqual { seed: 8 }, 5);
        assert_eq!(seq.assignment, thr.assignment, "mismatch on {name}");
        assert_eq!(seq.bytes_up, thr.bytes_up, "byte mismatch on {name}");
    }
}

#[test]
fn quality_degrades_gently_with_site_count() {
    // Figure 10's trend: P^II stays high but decreases (weakly) as sites
    // multiply.
    let g = scaled_a(4_000, 9);
    let params = params_for(&g);
    let (central, _) = central_dbscan(&g.data, &params);
    let q_at = |sites: usize| {
        let outcome = run_dbdc(
            &g.data,
            &params,
            Partitioner::RandomEqual { seed: 9 },
            sites,
        );
        q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII).q
    };
    let q2 = q_at(2);
    let q16 = q_at(16);
    assert!(q2 > 0.9, "q at 2 sites: {q2:.3}");
    assert!(q16 > 0.5, "q at 16 sites: {q16:.3}");
    assert!(
        q2 >= q16 - 0.05,
        "quality should not improve with fragmentation"
    );
}

#[test]
fn eps_global_default_policy_close_to_2x() {
    // Section 6: the max-ε_R default "is generally close to 2·Eps_local".
    let g = dataset_c(13);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts); // MaxEpsRange
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 1 }, 4);
    let ratio = outcome.global.eps_global / g.suggested_eps;
    assert!(
        (1.2..=2.0 + 1e-9).contains(&ratio),
        "eps_global / eps_local = {ratio:.3}"
    );
}

#[test]
fn index_backend_does_not_change_the_outcome() {
    let g = dataset_c(17);
    let base = params_for(&g);
    let reference = run_dbdc(
        &g.data,
        &base.with_index(dbdc_index::IndexKind::Linear),
        Partitioner::RandomEqual { seed: 17 },
        4,
    );
    for kind in [
        dbdc_index::IndexKind::Grid,
        dbdc_index::IndexKind::KdTree,
        dbdc_index::IndexKind::RStar,
    ] {
        let outcome = run_dbdc(
            &g.data,
            &base.with_index(kind),
            Partitioner::RandomEqual { seed: 17 },
            4,
        );
        // Index backends return range results in different orders, which
        // legitimately flips border-point ties and the greedy Scor pick, so
        // require structural equivalence rather than identical labels.
        let ari = dbdc_geom::adjusted_rand_index(&outcome.assignment, &reference.assignment);
        assert!(
            ari > 0.98,
            "index {} diverges from linear backend: ARI {ari:.4}",
            kind.name()
        );
        assert_eq!(
            outcome.assignment.n_clusters(),
            reference.assignment.n_clusters()
        );
    }
}

#[test]
fn pipeline_works_in_three_dimensions() {
    // Nothing in DBDC is 2-d-specific; run the whole protocol on 3-d data.
    let g = dbdc_datagen::hyper_blobs(3, 4, 400, 21);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    assert_eq!(
        central.clustering.n_clusters(),
        4,
        "central run finds the blobs"
    );
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 21 }, 4);
    let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    assert!(q.q > 0.9, "3-d P^II = {:.3}", q.q);
}

#[test]
fn pipeline_works_in_five_dimensions() {
    let g = dbdc_datagen::hyper_blobs(5, 3, 500, 22);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&g.data, &params);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 22 }, 3);
    let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    assert!(q.q > 0.85, "5-d P^II = {:.3}", q.q);
}

#[test]
fn pdbscan_and_dbdc_agree_on_structure() {
    // The exact parallel baseline and DBDC should tell the same story on
    // clean data.
    let g = dataset_c(23);
    let params = params_for(&g);
    let pd = dbdc::run_pdbscan(&g.data, &params, 4);
    let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 23 }, 4);
    assert_eq!(pd.clustering.n_clusters(), outcome.assignment.n_clusters());
    let q = q_dbdc(&outcome.assignment, &pd.clustering, ObjectQuality::PII);
    assert!(q.q > 0.95, "DBDC vs PDBSCAN P^II = {:.3}", q.q);
}
