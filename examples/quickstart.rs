//! Quickstart: cluster a distributed dataset with DBDC and compare against
//! a central DBSCAN run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};

fn main() {
    // 1. A dataset: the paper's test set C (1 021 points, 3 clusters).
    let generated = dbdc_datagen::dataset_c(42);
    println!(
        "data set C: {} points, {} true clusters",
        generated.data.len(),
        generated.truth.n_clusters()
    );

    // 2. Parameters: local DBSCAN settings plus the paper's recommended
    //    Eps_global = 2 * Eps_local.
    let params = DbdcParams::new(generated.suggested_eps, generated.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
        .with_model(LocalModelKind::Scor);

    // 3. Run DBDC over 4 simulated client sites.
    let sites = 4;
    let outcome = run_dbdc(
        &generated.data,
        &params,
        Partitioner::RandomEqual { seed: 7 },
        sites,
    );
    println!(
        "DBDC over {sites} sites: {} global clusters, {} noise points",
        outcome.assignment.n_clusters(),
        outcome.assignment.n_noise()
    );
    println!(
        "transmitted: {} representatives ({:.1}% of the data), {} bytes up, {} bytes down",
        outcome.n_representatives,
        100.0 * outcome.representative_fraction(),
        outcome.bytes_up,
        outcome.bytes_down
    );
    println!(
        "simulated overall runtime (paper cost model): {:.2} ms",
        outcome.timings.dbdc_total().as_secs_f64() * 1e3
    );

    // 4. The central reference clustering.
    let (central, central_time) = central_dbscan(&generated.data, &params);
    println!(
        "central DBSCAN: {} clusters, {} noise, {:.2} ms",
        central.clustering.n_clusters(),
        central.clustering.n_noise(),
        central_time.as_secs_f64() * 1e3
    );

    // 5. Quality per the paper's two measures.
    let p1 = q_dbdc(
        &outcome.assignment,
        &central.clustering,
        ObjectQuality::PI {
            qp: params.min_pts_local,
        },
    );
    let p2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    println!(
        "quality vs central: P^I = {:.1}%, P^II = {:.1}%",
        100.0 * p1.q,
        100.0 * p2.q
    );
}
