//! OPTICS as the global-model explorer — Section 6's road not taken.
//!
//! The paper considers building the global model with OPTICS so that the
//! user can "visually analyze the hierarchical clustering structure for
//! several Eps_global parameters without running the clustering algorithm
//! again and again". This example does exactly that: it runs the local
//! phase of DBDC, computes the OPTICS ordering of the transmitted
//! representatives, prints the reachability plot, and shows how different
//! cuts of the same ordering re-shape the global clustering.
//!
//! ```sh
//! cargo run --release --example optics_explorer
//! ```

use dbdc::{build_local_model, DbdcParams, LocalModelKind, Partitioner};
use dbdc_cluster::{dbscan_with_scp, extract_dbscan, optics, DbscanParams};
use dbdc_geom::{Dataset, Euclidean};
use dbdc_index::LinearScan;

fn main() {
    let g = dbdc_datagen::dataset_a(2004);
    let params = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let sites = 4;
    println!(
        "data set A: {} points over {sites} sites (eps_local = {})",
        g.data.len(),
        params.eps_local
    );

    // Local phase: gather every site's representatives.
    let assignment = Partitioner::RandomEqual { seed: 2004 }.assign(&g.data, sites);
    let (parts, _) = g.data.partition(sites, &assignment);
    let mut reps = Dataset::new(2);
    for (site, part) in parts.iter().enumerate() {
        let idx = dbdc_index::build_index(params.index, part, Euclidean, params.eps_local);
        let scp = dbscan_with_scp(
            part,
            idx.as_ref(),
            &DbscanParams::new(params.eps_local, params.min_pts_local),
        );
        let model = build_local_model(LocalModelKind::Scor, part, &scp, site as u32);
        for r in &model.reps {
            reps.push(r.point.coords());
        }
    }
    println!("{} representatives collected\n", reps.len());

    // One OPTICS run over the representatives answers every Eps_global.
    let max_eps = 6.0 * params.eps_local;
    let idx = LinearScan::new(&reps, Euclidean);
    let ordering = optics(&reps, &idx, &DbscanParams::new(max_eps, 2));
    println!("reachability plot of the representatives (cap = {max_eps:.1}):");
    print!("{}", ordering.reachability_plot(96, 12));
    println!("{}", "▔".repeat(96));
    println!("valleys = global clusters, peaks = separations\n");

    println!("{:>22} {:>16}", "Eps_global cut", "global clusters");
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let cut = mult * params.eps_local;
        let flat = extract_dbscan(&ordering, cut);
        println!("{:>14.1} (x{:.1}) {:>16}", cut, mult, flat.n_clusters());
    }
    println!(
        "\nThe paper's recommended 2x cut sits on the plateau where the\n\
         cluster count stabilizes; one ordering gave us the whole sweep."
    );
}
