//! DBSCAN beyond vector spaces — one of the paper's stated reasons for
//! choosing DBSCAN is that it "can be used for all kinds of metric data
//! spaces and is not confined to vector spaces".
//!
//! This example clusters *strings* under Levenshtein edit distance, with
//! the ε-range queries served by the M-tree (the metric access method the
//! paper cites), and shows the same data in an M-tree similarity lookup.
//!
//! ```sh
//! cargo run --release --example metric_space
//! ```

use dbdc_cluster::{metric_dbscan, DbscanParams};
use dbdc_geom::metric::EditDistance;
use dbdc_index::MTree;

fn main() {
    // Misspelled product names harvested from, say, scanned receipts.
    let words: Vec<String> = [
        // "espresso" family
        "espresso",
        "expresso",
        "espressso",
        "esspresso",
        "espreso",
        // "yoghurt" family
        "yoghurt",
        "yogurt",
        "yoghourt",
        "yogurt ",
        "joghurt",
        // "detergent" family
        "detergent",
        "detergant",
        "deterjent",
        "detergents",
        // lone entries
        "pineapple",
        "umbrella",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Cluster with DBSCAN at edit-distance 2, min 3 similar spellings.
    let result = metric_dbscan(&words, EditDistance, &DbscanParams::new(2.0, 3));
    println!(
        "{} spelling clusters, {} unmatched entries\n",
        result.clustering.n_clusters(),
        result.clustering.n_noise()
    );
    for c in 0..result.clustering.n_clusters() {
        let members: Vec<&str> = result
            .clustering
            .members(c)
            .iter()
            .map(|&i| words[i as usize].as_str())
            .collect();
        println!("cluster {c}: {members:?}");
    }
    let noise: Vec<&str> = words
        .iter()
        .enumerate()
        .filter(|(i, _)| result.clustering.label(*i as u32).is_noise())
        .map(|(_, w)| w.as_str())
        .collect();
    println!("noise: {noise:?}");

    // The underlying M-tree doubles as a similarity index.
    let tree = MTree::from_objects(EditDistance, words.iter().cloned());
    let query = "expresso".to_string();
    let hits = tree.range(&query, 2.0);
    println!("\nM-tree range query {query:?} (edit distance <= 2):");
    for id in hits {
        println!("  {}", tree.object(id));
    }
}
