//! Incremental local clustering — the paper's Section 4 argues for DBSCAN
//! partly because its incremental version lets a client site keep its
//! clustering fresh as data streams in, re-transmitting a local model
//! "only if the local clustering changes considerably".
//!
//! This example simulates one client site receiving a stream of points:
//! the site maintains its clustering incrementally, tracks how much the
//! cluster structure has drifted since the last transmitted model, and
//! re-sends a model only past a drift threshold — counting how much
//! transmission that saves compared to sending after every batch.
//!
//! ```sh
//! cargo run --release --example incremental_updates
//! ```

use dbdc_cluster::{DbscanParams, IncrementalDbscan};
use dbdc_geom::{adjusted_rand_index, Clustering};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let params = DbscanParams::new(1.2, 5);
    let mut site = IncrementalDbscan::new(2, params);
    let mut rng = StdRng::seed_from_u64(2004);

    // The site's world: three slowly filling clusters plus drifting noise.
    let centers = [(10.0, 10.0), (30.0, 12.0), (20.0, 30.0)];
    let batches = 40;
    let batch_size = 50;

    let mut last_sent: Option<Clustering> = None;
    let mut transmissions = 0usize;
    let drift_threshold = 0.15; // re-send when ARI vs last model drops 15%

    println!(
        "{:>5} {:>7} {:>9} {:>7} {:>11}",
        "batch", "points", "clusters", "drift", "transmitted"
    );
    for batch in 0..batches {
        for _ in 0..batch_size {
            let p = if rng.random_range(0..100) < 85 {
                let (cx, cy) = centers[rng.random_range(0..centers.len())];
                [
                    cx + rng.random_range(-3.0..3.0),
                    cy + rng.random_range(-3.0..3.0),
                ]
            } else {
                [rng.random_range(0.0..40.0), rng.random_range(0.0..40.0)]
            };
            site.insert(&p);
        }
        let current = site.clustering();
        let drift = match &last_sent {
            None => 1.0,
            Some(prev) => {
                // Compare on the common prefix of points.
                let k = prev.len();
                let prefix = Clustering::from_labels(current.labels()[..k].to_vec());
                1.0 - adjusted_rand_index(prev, &prefix).max(0.0)
            }
        };
        let send = drift > drift_threshold;
        if send {
            transmissions += 1;
            last_sent = Some(current.clone());
        }
        if batch % 5 == 4 || send {
            println!(
                "{:>5} {:>7} {:>9} {:>7.3} {:>11}",
                batch + 1,
                site.len(),
                current.n_clusters(),
                drift,
                if send { "yes" } else { "" }
            );
        }
    }
    println!(
        "\n{} model transmissions instead of {} (one per batch): {:.0}% saved",
        transmissions,
        batches,
        100.0 * (1.0 - transmissions as f64 / batches as f64)
    );
}
