//! A deep dive into the quality measures of Section 8.
//!
//! The paper argues that its continuous P^II discriminates where the
//! discrete P^I saturates. This example makes the argument concrete on the
//! noisy data set B: it runs DBDC at several Eps_global settings, reports
//! P^I, P^II, and the external baselines ARI/NMI side by side, and then
//! drills into the per-cluster breakdown (`cluster_report`) at the worst
//! setting to show *which* clusters merged or fragmented.
//!
//! ```sh
//! cargo run --release --example quality_deep_dive
//! ```

use dbdc::{
    central_dbscan, cluster_report, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, ObjectQuality,
    Partitioner,
};
use dbdc_geom::{adjusted_rand_index, normalized_mutual_information};

fn main() {
    let g = dbdc_datagen::dataset_b(2004);
    let base = DbdcParams::new(g.suggested_eps, g.suggested_min_pts);
    let (central, _) = central_dbscan(&g.data, &base);
    println!(
        "data set B: {} points (~35% noise); central DBSCAN: {} clusters, {} noise\n",
        g.data.len(),
        central.clustering.n_clusters(),
        central.clustering.n_noise()
    );

    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8}",
        "Eps_global", "P^I", "P^II", "ARI", "NMI"
    );
    let mut worst: Option<(f64, dbdc_geom::Clustering)> = None;
    for mult in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let params = base.with_eps_global(EpsGlobal::MultipleOfLocal(mult));
        let outcome = run_dbdc(&g.data, &params, Partitioner::RandomEqual { seed: 7 }, 4);
        let p1 = q_dbdc(
            &outcome.assignment,
            &central.clustering,
            ObjectQuality::PI {
                qp: base.min_pts_local,
            },
        )
        .q;
        let p2 = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII).q;
        let ari = adjusted_rand_index(&outcome.assignment, &central.clustering);
        let nmi = normalized_mutual_information(&outcome.assignment, &central.clustering);
        println!(
            "{:>9.1}x {:>7.1}% {:>7.1}% {:>8.3} {:>8.3}",
            mult,
            100.0 * p1,
            100.0 * p2,
            ari,
            nmi
        );
        if worst.as_ref().is_none_or(|(q, _)| p2 < *q) {
            worst = Some((p2, outcome.assignment));
        }
    }
    println!(
        "\nNote how P^I stays near 100% even where P^II, ARI and NMI all\n\
         report damage — the paper's Section 9.2 argument.\n"
    );

    let (q, assignment) = worst.expect("at least one run");
    println!(
        "per-cluster breakdown at the worst setting (P^II = {:.1}%):",
        100.0 * q
    );
    println!(
        "{:>8} {:>6} {:>10} {:>9} {:>10} {:>8}",
        "central", "size", "best distr", "jaccard", "fragments", "to noise"
    );
    for m in cluster_report(&assignment, &central.clustering) {
        println!(
            "{:>8} {:>6} {:>10} {:>9.3} {:>10} {:>8}",
            m.central,
            m.size,
            m.best_distr.map_or("-".into(), |d| d.to_string()),
            m.jaccard,
            m.fragments,
            m.lost_to_noise
        );
    }
}
