//! The paper's astronomy scenario: space telescopes around the world
//! collect ~1 GB/hour each and cannot ship raw data to a central archive.
//! Each observatory clusters its detections locally, uploads only its local
//! model over a slow uplink, and receives the global model back.
//!
//! This example runs the protocol with the threaded runtime (one thread per
//! observatory), then prices the transmission against centralizing the raw
//! detections using the simulated network models.
//!
//! ```sh
//! cargo run --release --example telescopes
//! ```

use dbdc::{
    q_dbdc, run_dbdc_threaded, wire, DbdcParams, EpsGlobal, LocalModelKind, NetworkModel,
    ObjectQuality, Partitioner,
};

fn main() {
    // Sky detections: a dataset-A-like mixture standing in for point
    // sources in a shared survey region, observed by 6 telescopes.
    let n = 60_000;
    let telescopes = 6;
    let sky = dbdc_datagen::scaled_a(n, 1969);
    println!("{n} detections across {telescopes} observatories");

    let params = DbdcParams::new(sky.suggested_eps, sky.suggested_min_pts)
        .with_eps_global(EpsGlobal::MultipleOfLocal(2.0))
        .with_model(LocalModelKind::Scor);

    let outcome = run_dbdc_threaded(
        &sky.data,
        &params,
        Partitioner::RandomEqual { seed: 1969 },
        telescopes,
    );
    println!(
        "global model: {} source groups from {} representatives",
        outcome.global.n_clusters, outcome.n_representatives
    );
    println!(
        "local phase (slowest observatory): {:.1} ms, global phase: {:.1} ms",
        outcome.timings.local_max().as_secs_f64() * 1e3,
        outcome.timings.global.as_secs_f64() * 1e3
    );

    // Compare shipping models vs shipping raw detections over the uplink.
    let uplink = NetworkModel::slow_uplink();
    let raw_bytes = wire::raw_data_bytes(n, sky.data.dim());
    let per_site_model = outcome.bytes_up / telescopes;
    let per_site_raw = raw_bytes / telescopes;
    println!("\nuplink: 1 Mbit/s, 250 ms latency");
    println!(
        "  per-observatory raw upload:   {:>10} bytes -> {:>8.1} s",
        per_site_raw,
        uplink.transfer_time(per_site_raw).as_secs_f64()
    );
    println!(
        "  per-observatory model upload: {:>10} bytes -> {:>8.1} s",
        per_site_model,
        uplink.transfer_time(per_site_model).as_secs_f64()
    );
    println!(
        "  saving factor: {:.0}x",
        per_site_raw as f64 / per_site_model.max(1) as f64
    );

    // Sanity: the distributed result matches a central run.
    let (central, _) = dbdc::central_dbscan(&sky.data, &params);
    let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
    println!(
        "\nquality vs hypothetical central clustering: P^II = {:.1}%",
        100.0 * q.q
    );
}
