//! The paper's retail scenario: a supermarket chain where check-out
//! scanners at different stores gather data unremittingly. Headquarters
//! wants customer segments over (basket value, visit recency) without
//! pulling every transaction to the center.
//!
//! The twist explored here: transactions are not randomly spread over
//! stores — each store sees its own local population, i.e. the partitioning
//! is spatially skewed. The example compares DBDC quality under the paper's
//! random split and under store-skewed (spatial-stripe) splits, for both
//! local models.
//!
//! ```sh
//! cargo run --release --example retail_chain
//! ```

use dbdc::{
    central_dbscan, q_dbdc, run_dbdc, DbdcParams, EpsGlobal, LocalModelKind, ObjectQuality,
    Partitioner,
};
use dbdc_datagen::{ClusterSpec, MixtureSpec, Profile};

fn main() {
    // Customer segments in (basket value €, days since last visit) space.
    let spec = MixtureSpec {
        clusters: vec![
            // Weekly big-basket families.
            ClusterSpec {
                center: [85.0, 7.0],
                radii: [18.0, 2.5],
                angle: 0.0,
                n: 3_000,
                profile: Profile::Uniform,
            },
            // Daily top-up shoppers.
            ClusterSpec {
                center: [14.0, 1.5],
                radii: [6.0, 1.0],
                angle: 0.0,
                n: 4_000,
                profile: Profile::Uniform,
            },
            // Monthly bulk buyers.
            ClusterSpec {
                center: [160.0, 30.0],
                radii: [25.0, 4.0],
                angle: 0.2,
                n: 1_500,
                profile: Profile::Uniform,
            },
        ],
        noise: 500,
        bounds: [[0.0, 220.0], [0.0, 45.0]],
    };
    let generated = spec.generate(7);
    let stores = 10;
    println!(
        "{} transactions, {} segments + noise, {stores} stores",
        generated.data.len(),
        generated.truth.n_clusters()
    );

    let params = DbdcParams::new(2.2, 6).with_eps_global(EpsGlobal::MultipleOfLocal(2.0));
    let (central, _) = central_dbscan(&generated.data, &params);
    println!(
        "central reference: {} segments, {} unsegmented customers\n",
        central.clustering.n_clusters(),
        central.clustering.n_noise()
    );

    println!(
        "{:<18} {:<12} {:>9} {:>9} {:>7}",
        "partitioning", "local model", "P^II [%]", "repr [%]", "bytes"
    );
    for part in [
        Partitioner::RandomEqual { seed: 7 },
        Partitioner::SpatialStripes { axis: 0 },
    ] {
        for model in [LocalModelKind::Scor, LocalModelKind::KMeans] {
            let outcome = run_dbdc(&generated.data, &params.with_model(model), part, stores);
            let q = q_dbdc(&outcome.assignment, &central.clustering, ObjectQuality::PII);
            println!(
                "{:<18} {:<12} {:>9.1} {:>9.1} {:>7}",
                part.name(),
                model.name(),
                100.0 * q.q,
                100.0 * outcome.representative_fraction(),
                outcome.bytes_up
            );
        }
    }
    println!(
        "\nStore-skewed data keeps whole segments on single stores, so the\n\
         local models describe them fully; the random split fragments every\n\
         segment across stores and leans on the global merge instead. DBDC\n\
         handles both, which is the point of the representative scheme."
    );
}
