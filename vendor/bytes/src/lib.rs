//! Offline stand-in for the `bytes` crate: the subset used by this
//! workspace (`Bytes`, `BytesMut`, little-endian `Buf`/`BufMut`).
//!
//! `Bytes` is a cheaply clonable shared byte buffer; `BytesMut` is a
//! growable builder that freezes into `Bytes`. The `Buf` impl for
//! `&[u8]` advances the slice in place, mirroring upstream.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side trait: little-endian puts used by the wire codec.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: little-endian gets used by the wire codec.
///
/// Like upstream, the getters panic when fewer than the required bytes
/// remain; callers check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;

    /// Pop `n <= 8` bytes off the front, zero-padded to 8. Internal
    /// helper for the typed getters (not part of the upstream API).
    fn take_le_bytes(&mut self, n: usize) -> [u8; 8];

    fn get_u8(&mut self) -> u8 {
        self.take_le_bytes(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let raw = self.take_le_bytes(2);
        u16::from_le_bytes([raw[0], raw[1]])
    }

    fn get_u32_le(&mut self) -> u32 {
        let raw = self.take_le_bytes(4);
        u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]])
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_le_bytes(8))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_le_bytes(8))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_le_bytes(&mut self, n: usize) -> [u8; 8] {
        assert!(n <= 8 && n <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(n);
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(head);
        *self = tail;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(0.25);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r, &[1, 2, 3]);
    }
}
