//! Offline stand-in for `serde`.
//!
//! The workspace only references serde behind optional, default-off
//! feature gates (`cfg_attr(feature = "serde", derive(...))`). This
//! crate exists so those optional dependency declarations resolve
//! without registry access; it intentionally provides no items. If a
//! downstream crate turns its `serde` feature on, the build fails
//! loudly here rather than silently skipping serialization.
