//! Offline stand-in for `criterion` (0.7 API subset).
//!
//! Each benchmark does one warm-up pass, then repeats the routine until
//! ~`Criterion::measurement_budget` of wall-clock time has elapsed
//! (bounded by the configured sample size), and prints the mean
//! iteration time to stdout. There is no statistical analysis, outlier
//! detection, or `target/criterion` report output — just honest means,
//! which is what the workspace's benches log into CHANGES.md.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stub times setup and routine
/// separately regardless, so the variants only bound batch size.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`/`iter_batched`: (total routine time, iters).
    measurement: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let mut iters = 0u64;
        let start = Instant::now();
        let budget = self.config.measurement_budget;
        let mut elapsed = Duration::ZERO;
        while iters < self.config.sample_size as u64 && elapsed < budget {
            black_box(routine());
            iters += 1;
            elapsed = start.elapsed();
        }
        self.measurement = Some((elapsed, iters.max(1)));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut iters = 0u64;
        let mut in_routine = Duration::ZERO;
        let wall = Instant::now();
        let budget = self.config.measurement_budget;
        while iters < self.config.sample_size as u64 && wall.elapsed() < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            in_routine += start.elapsed();
            iters += 1;
        }
        self.measurement = Some((in_routine, iters.max(1)));
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    measurement_budget: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 100,
            measurement_budget: Duration::from_millis(300),
        }
    }
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, None, id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.config.clone(),
            _parent: std::marker::PhantomData,
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_budget = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, Some(&self.name), id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.config, Some(&self.name), id.into(), |b| {
            b_call(&mut f, b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn b_call<I: ?Sized, F: FnMut(&mut Bencher, &I)>(f: &mut F, b: &mut Bencher, input: &I) {
    f(b, input)
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Config,
    group: Option<&str>,
    id: BenchmarkId,
    mut f: F,
) {
    let mut bencher = Bencher {
        config,
        measurement: None,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    match bencher.measurement {
        Some((total, iters)) => {
            let mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
            println!("{label:<60} mean {mean:>12.3?}   ({iters} iters)");
        }
        None => println!("{label:<60} (no measurement recorded)"),
    }
}

/// Build a group-runner function from benchmark functions
/// (`criterion_group!(benches, f1, f2)` — simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 1, "warm-up plus at least one measured iter");
    }
}
