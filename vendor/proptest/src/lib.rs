//! Offline stand-in for `proptest` (1.x API subset).
//!
//! Implements the surface this workspace uses — the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, range / tuple /
//! `collection::vec` / `bool::ANY` / `any::<int>()` / char-class
//! string strategies, `prop_map`, and [`test_runner::ProptestConfig`] —
//! as plain random testing.
//!
//! Differences from upstream: failing cases are **not shrunk** and are
//! not persisted to `proptest-regressions` files. Each generated test
//! derives a deterministic seed from its module path and name, and a
//! failure message reports the case number and seed, so failures
//! reproduce exactly on rerun.

// Re-exported so the macro expansions can name the RNG via `$crate`.
#[doc(hidden)]
pub use rand;

/// Deterministic per-test seed (FNV-1a over the test's full path).
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod test_runner {
    /// Per-block configuration; only `cases` is supported.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream there is no value tree: a strategy just samples
    /// a fresh value from the RNG (no shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`]: the outer
    /// sample parameterizes an inner strategy, which is then sampled
    /// from the same RNG stream (no value tree, so no shrinking).
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;

        fn sample(&self, rng: &mut StdRng) -> O::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Constant strategy (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Char-class pattern strategy: supports the regex subset
    /// `literal`, `[a-z...]`, and `{m}` / `{m,n}` repetition — enough
    /// for patterns like `"[a-c]{0,8}"`. Anything else panics with a
    /// clear message rather than silently generating the wrong thing.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            let mut chars = self.chars().peekable();
            while let Some(ch) = chars.next() {
                let choices: Vec<char> = match ch {
                    '[' => {
                        let mut set = Vec::new();
                        loop {
                            let c = chars
                                .next()
                                .unwrap_or_else(|| panic!("unterminated char class in {self:?}"));
                            if c == ']' {
                                break;
                            }
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars
                                    .next()
                                    .unwrap_or_else(|| panic!("dangling '-' in {self:?}"));
                                set.extend(c..=hi);
                            } else {
                                set.push(c);
                            }
                        }
                        set
                    }
                    '(' | '|' | '\\' | '.' | '*' | '+' | '?' => {
                        panic!("regex feature {ch:?} in {self:?} not supported by proptest stub")
                    }
                    c => vec![c],
                };
                let (min, max) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition bound"),
                            hi.trim().parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n: usize = spec.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                let reps = rng.random_range(min..=max);
                for _ in 0..reps {
                    out.push(choices[rng.random_range(0..choices.len())]);
                }
            }
            out
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive element-count range for [`fn@vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool` strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = ::std::ops::RangeInclusive<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;

        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::collection::vec` / `prop::bool::ANY` resolve
    /// after a prelude glob import, as with upstream.
    pub use crate as prop;
}

/// Define property tests. Supports the upstream form
/// `proptest! { #![proptest_config(...)] #[test] fn name(pat in strategy, ...) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __pt_rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)+
                    let __pt_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = __pt_result {
                        ::std::panic!(
                            "proptest case {}/{} failed (test seed {:#x}): {}",
                            case + 1,
                            config.cases,
                            seed,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __pt_l,
                __pt_r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                ::std::format!($($fmt)+),
                __pt_l,
                __pt_r
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __pt_l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((x, y) in (0.0..1.0f64, 1u32..5), v in prop::collection::vec(0..10i32, 2..6)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn char_class_strings(s in "[a-c]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn any_and_bool(b in prop::bool::ANY, byte in any::<u8>()) {
            let _ = b;
            prop_assert!(u32::from(byte) <= 255);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
