//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over
//! floating-point and integer ranges — the only surface this workspace
//! uses. Seeded sequences are deterministic across runs and platforms,
//! but are not bit-compatible with upstream `rand`.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    /// xoshiro256++ generator, the same family upstream `StdRng` has
    /// used historically. Small state, passes BigCrush, and is cheap to
    /// seed deterministically.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding trait; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Random value generation; `random_range` mirrors rand 0.9 semantics
/// (uniform over the given range, panics on an empty range).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod distr {
    use super::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample of `T`.
    ///
    /// Mirroring upstream, there is exactly **one** impl per range shape,
    /// generic over [`SampleUniform`] — type inference can then flow from
    /// the use site into untyped integer range literals (e.g.
    /// `v[rng.random_range(0..3)]` infers `usize`).
    pub trait SampleRange<T> {
        fn sample_from<R: Rng>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_from<R: Rng>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_from<R: Rng>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            T::sample_inclusive(rng, start, end)
        }
    }

    /// Types uniformly samplable from a range.
    pub trait SampleUniform: Sized {
        fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
        fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
    }

    macro_rules! float_sample_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                    assert!(start < end, "empty float range");
                    let v = start + (end - start) * rng.random_f64() as $t;
                    // Rounding can land exactly on the excluded endpoint.
                    if v < end {
                        v
                    } else {
                        start
                    }
                }

                fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                    assert!(start <= end, "empty float range");
                    start + (end - start) * rng.random_f64() as $t
                }
            }
        )*};
    }

    float_sample_uniform!(f32, f64);

    /// Multiply-shift uniform in `[0, span)`. The modulo bias is at most
    /// `span / 2^64`, far below anything observable in tests.
    fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_sample_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                    assert!(start < end, "empty integer range");
                    let span = (end as i128 - start as i128) as u128 as u64;
                    (start as i128 + below(rng, span) as i128) as $t
                }

                fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                    assert!(start <= end, "empty integer range");
                    let span = (end as i128 - start as i128) as u128 as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + below(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let f = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.random_range(3..9usize);
            assert!((3..9).contains(&u));
            let i = rng.random_range(-4..=4i32);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
